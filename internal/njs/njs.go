// Package njs implements the Network Job Supervisor — the job-management
// core of the UNICORE server tier (paper §4.2, §5.5). The NJS:
//
//   - accepts consigned AJOs and creates the per-job Uspace directory,
//   - translates abstract tasks into real batch jobs via the translation
//     tables (package incarnation) and submits them to the Vsite's batch
//     subsystem (package codine),
//   - schedules the dependent parts of a job in the predefined sequence
//     (its only scheduling power — §5.5: delivery order, never the
//     destination system's queue),
//   - performs imports, exports, and Uspace-to-Uspace transfers,
//   - distributes job groups destined for other Usites to the peer NJS
//     through the target site's gateway, and collects their outcomes, and
//   - answers status, outcome, list, and control requests.
//
// # Concurrency model
//
// The NJS is designed for many concurrent clients. Job state is sharded:
// every consigned job carries its own lock, and a lightweight registry
// RWMutex guards only the job map and its indexes. Poll, Outcome, List,
// Control, and FetchFile on different jobs never contend; clock callbacks
// (deferred completions, batch events, remote polls) lock only the job they
// advance. Methods with a "Locked" suffix require the receiver job's lock.
//
// Lock ordering: job locks nest strictly ancestor→descendant down the
// sub-job tree (a parent may lock its child, never the reverse — a child
// notifies its parent through a clock callback), and the registry lock is
// acquired only below job locks. Fields of a job that are set at admission
// (id, owner, login, job, vsite, jobDir, graph, submitted, parent) are
// immutable and may be read without any lock.
//
// # Durability
//
// With a journal attached (AttachJournal / Recover), every admission and
// state transition is appended to a write-ahead journal: the append is an
// O(1) enqueue on a batched background flusher, so journaling never puts
// file I/O inside a job lock and Poll appends nothing. Consign additionally
// group-commits (fsync, batched across concurrent consigns, outside all
// locks) before acknowledging, so an accepted job is always durable. See
// durable.go for the recovery model.
package njs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/codine"
	"unicore/internal/core"
	"unicore/internal/dag"
	"unicore/internal/events"
	"unicore/internal/incarnation"
	"unicore/internal/machine"
	"unicore/internal/protocol"
	"unicore/internal/resources"
	"unicore/internal/sim"
	"unicore/internal/staging"
	"unicore/internal/telemetry"
	"unicore/internal/uspace"
	"unicore/internal/uudb"
	"unicore/internal/vfs"
)

// Errors reported by NJS operations.
var (
	ErrUnknownJob    = errors.New("njs: unknown job")
	ErrUnknownVsite  = errors.New("njs: unknown vsite")
	ErrWrongUsite    = errors.New("njs: job addressed to another usite")
	ErrNotAuthorized = errors.New("njs: not authorized for this job")
	ErrNoMapper      = errors.New("njs: no login mapper configured")
	ErrDown          = errors.New("njs: site is down")
)

// Timing model for staged data (virtual time): local copies stream at
// localCopyRate after fileOpLatency; Uspace-to-Uspace transfers over https
// pay httpsLatency and stream at httpsRate — the §5.6 disadvantage.
const (
	fileOpLatency = 5 * time.Millisecond
	httpsLatency  = 50 * time.Millisecond
	localCopyRate = 200 << 20 // bytes/second
	httpsRate     = 10 << 20  // bytes/second

	remotePollInterval = 2 * time.Second
	remoteMaxFailures  = 30
)

func localCopyDelay(size int64) time.Duration {
	return fileOpLatency + time.Duration(float64(size)/localCopyRate*float64(time.Second))
}

func httpsTransferDelay(size int64) time.Duration {
	return httpsLatency + time.Duration(float64(size)/httpsRate*float64(time.Second))
}

// LoginMapper resolves a user DN to the local login at a Vsite. The gateway
// injects the site's uudb here, keeping the mapping at the security tier
// where the paper puts it.
type LoginMapper func(core.DN, core.Vsite) (uudb.Login, error)

// VsiteConfig declares one execution system behind this NJS.
type VsiteConfig struct {
	Name    core.Vsite
	Profile machine.Profile
	// Queues defaults to a single "batch" queue spanning all processors.
	Queues []codine.Queue
	// Backfill enables EASY backfill in the batch scheduler.
	Backfill bool
	// Quota bounds the Vsite's data space (0 = unlimited).
	Quota int64
}

// Vsite is one configured execution system.
type Vsite struct {
	Name  core.Vsite
	RMS   *codine.RMS
	Table incarnation.Table
	Space *uspace.Space
	Page  resources.Page
}

// Config assembles an NJS.
type Config struct {
	Usite  core.Usite
	Clock  sim.Scheduler
	Vsites []VsiteConfig
	// Instance tags this NJS within a replica pool (package pool). When set,
	// minted job IDs carry the tag ("FZJ-r1-000042" instead of "FZJ-000042")
	// so that the replicas of one Usite never collide on job IDs — and, since
	// sub-job consign IDs derive from job IDs, never collide on the
	// deterministic consign IDs they present to peer sites either. Leave
	// empty for a single-NJS site; a recovered replica must reuse the tag it
	// was journaled under.
	Instance string
}

// NJS is one site's network job supervisor.
type NJS struct {
	usite    core.Usite
	instance string
	clock    sim.Scheduler
	vsites   map[core.Vsite]*Vsite // immutable after New
	// spools holds each Vsite's staged-upload spool (immutable after New;
	// the Spool itself is thread-safe). See staging.go.
	spools map[core.Vsite]*staging.Spool

	mapLogin LoginMapper // set once during wiring, before traffic
	// peers is the client for sub-job consignment and transfers. It is an
	// atomic pointer because recovery re-wires it while recovered clock
	// callbacks may already be scheduled.
	peers atomic.Pointer[protocol.Client]

	// regMu guards the job registry and the batch index. It is held only
	// for map lookups and inserts — never across job work — so that
	// operations on different jobs proceed in parallel. See the package
	// comment for the lock ordering.
	regMu      sync.RWMutex
	jobs       map[core.JobID]*unicoreJob
	batchIndex map[batchKey]actionRef
	seq        int64

	// consignMu guards consignIndex. Idempotent consignment uses a
	// reservation scheme: the first caller for a consign ID inserts an
	// entry and admits with no lock held (admission may consign sub-jobs
	// to peer sites — holding a site-wide lock across that network call
	// could deadlock two sites consigning to each other); concurrent
	// retries wait on the entry instead of admitting a duplicate.
	consignMu    sync.Mutex
	consignIndex map[string]*consignEntry

	// log is the protocol-v2 event log: every lifecycle transition is
	// appended here (always, journal or not) so subscribers can consume job
	// progress as server-push events instead of polling.
	log *events.Log

	// rec is the attached journal recorder (nil = durability disabled). An
	// atomic pointer keeps the hot-path check lock-free.
	rec atomic.Pointer[recorder]
	// dead marks a killed NJS (crash simulation / decommission): clock
	// callbacks that fire afterwards must not advance state, reach peers, or
	// journal.
	dead atomic.Bool

	// tel is this NJS's telemetry registry (consign latency, journal sync
	// latency and batch sizes, staging throughput, trace spans). Its clock
	// is the NJS clock, so spans order on simulation time under a testbed.
	tel *telemetry.Registry
	// journalSynced remembers the journal-append total at the last sync so
	// SyncJournal can report group-commit batch sizes.
	journalSynced atomic.Uint64
}

// consignEntry is one idempotent-consignment reservation. done is closed
// once id/err are set; failed attempts are removed from the index so a
// later retry can re-attempt admission.
type consignEntry struct {
	done chan struct{}
	id   core.JobID
	err  error
}

type batchKey struct {
	vsite core.Vsite
	job   codine.JobID
}

type actionRef struct {
	job    core.JobID
	action ajo.ActionID
}

// unicoreJob is the NJS-side state of one consigned job group.
type unicoreJob struct {
	// Immutable after admission — readable without holding mu.
	id        core.JobID
	owner     core.DN
	login     uudb.Login
	job       *ajo.AbstractJob
	vsite     *Vsite
	jobDir    string
	graph     *dag.Graph
	submitted time.Time
	consignID string
	// parent links a locally expanded child back to its parent action.
	parent *parentLink

	// mu guards everything below. It is this job's shard of the NJS:
	// operations on other jobs never take it.
	mu       sync.Mutex
	outcomes map[ajo.ActionID]*ajo.Outcome
	root     *ajo.Outcome
	done     map[string]bool
	inflight map[ajo.ActionID]bool
	held     bool
	aborted  bool
	// injections are files to stage into a sub-job before consigning it
	// (dependency-files arriving from predecessors).
	injections map[ajo.ActionID][]injection
	// batch maps in-flight actions to their batch job IDs for control.
	batch map[ajo.ActionID]codine.JobID
	// remote tracks sub-jobs consigned to peer Usites.
	remote map[ajo.ActionID]*remoteRef
	// children tracks sub-jobs expanded locally (same Usite).
	children map[ajo.ActionID]core.JobID
}

type injection struct {
	name string
	data []byte
}

type parentLink struct {
	job    core.JobID
	action ajo.ActionID
}

type remoteRef struct {
	usite    core.Usite
	job      core.JobID
	failures int
	timer    sim.Timer
}

// New assembles an NJS from its configuration.
func New(cfg Config) (*NJS, error) {
	if cfg.Usite == "" {
		return nil, errors.New("njs: empty usite name")
	}
	if cfg.Clock == nil {
		return nil, errors.New("njs: nil clock")
	}
	if len(cfg.Vsites) == 0 {
		return nil, errors.New("njs: no vsites configured")
	}
	origin := "njs/" + string(cfg.Usite)
	if cfg.Instance != "" {
		origin += "/" + cfg.Instance
	}
	n := &NJS{
		usite:        cfg.Usite,
		instance:     cfg.Instance,
		clock:        cfg.Clock,
		tel:          telemetry.New(origin),
		vsites:       make(map[core.Vsite]*Vsite, len(cfg.Vsites)),
		spools:       make(map[core.Vsite]*staging.Spool, len(cfg.Vsites)),
		jobs:         make(map[core.JobID]*unicoreJob),
		batchIndex:   make(map[batchKey]actionRef),
		consignIndex: make(map[string]*consignEntry),
		log:          events.NewLog(cfg.Instance, events.DefaultJobCap),
	}
	n.tel.SetNow(cfg.Clock.Now)
	for _, vc := range cfg.Vsites {
		if vc.Name == "" {
			return nil, errors.New("njs: vsite without name")
		}
		if _, dup := n.vsites[vc.Name]; dup {
			return nil, fmt.Errorf("njs: duplicate vsite %q", vc.Name)
		}
		queues := vc.Queues
		if len(queues) == 0 {
			queues = []codine.Queue{{Name: "batch", Slots: vc.Profile.Processors, MaxTime: 24 * time.Hour}}
		}
		fs := vfs.New(cfg.Clock)
		if vc.Quota > 0 {
			fs.SetQuota(vc.Quota)
		}
		space, err := uspace.New(fs)
		if err != nil {
			return nil, err
		}
		rms, err := codine.New(cfg.Clock, codine.Config{
			Machine:  vc.Profile,
			Queues:   queues,
			Backfill: vc.Backfill,
		})
		if err != nil {
			return nil, fmt.Errorf("njs: vsite %s: %w", vc.Name, err)
		}
		target := core.Target{Usite: cfg.Usite, Vsite: vc.Name}
		page := vc.Profile.ResourcePage()
		page.Target = target
		vs := &Vsite{
			Name:  vc.Name,
			RMS:   rms,
			Table: incarnation.NewTable(target, vc.Profile, queues[0].Name),
			Space: space,
			Page:  page,
		}
		n.vsites[vc.Name] = vs
		// The spool tag makes handles globally unambiguous: distinct per
		// Vsite within this NJS and, via the replica instance, distinct
		// across the replicas of a pool (a recovered replica reuses its tag,
		// so handles survive recovery unchanged).
		spoolTag := string(vc.Name)
		if cfg.Instance != "" {
			spoolTag = cfg.Instance + "-" + spoolTag
		}
		spool, err := staging.NewSpool(fs, SpoolRoot, spoolTag, cfg.Clock)
		if err != nil {
			return nil, fmt.Errorf("njs: vsite %s: %w", vc.Name, err)
		}
		n.spools[vc.Name] = spool
		name := vc.Name
		// Deliver start events through the clock rather than synchronously:
		// the RMS may dispatch inside Submit, which runs while the NJS holds
		// its own lock, and the deferral also guarantees the batch index is
		// registered before the event is handled.
		rms.Observe(func(ev codine.Event) {
			if ev.Type != codine.EventStarted {
				return
			}
			bid := ev.Job
			cfg.Clock.AfterFunc(0, func() { n.onBatchStarted(name, bid) })
		})
	}
	return n, nil
}

// Usite returns the site this NJS serves.
func (n *NJS) Usite() core.Usite { return n.usite }

// SetLoginMapper installs the DN→login resolver (normally the gateway's
// uudb).
func (n *NJS) SetLoginMapper(fn LoginMapper) { n.mapLogin = fn }

// SetPeers installs the client used to reach other Usites' gateways.
func (n *NJS) SetPeers(c *protocol.Client) { n.peers.Store(c) }

// peerClient returns the installed peer client (nil before wiring).
func (n *NJS) peerClient() *protocol.Client { return n.peers.Load() }

// VsiteNames lists the configured Vsites, sorted.
func (n *NJS) VsiteNames() []core.Vsite {
	out := make([]core.Vsite, 0, len(n.vsites))
	for v := range n.vsites {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Vsite returns a configured Vsite.
func (n *NJS) Vsite(name core.Vsite) (*Vsite, bool) {
	v, ok := n.vsites[name]
	return v, ok
}

// Pages returns the resource pages of all Vsites, sorted by target.
func (n *NJS) Pages() []resources.Page {
	var out []resources.Page
	for _, name := range n.VsiteNames() {
		out = append(out, n.vsites[name].Page)
	}
	return out
}

// Load reports the mean batch occupancy across Vsites in [0,1] (input to
// the resource broker).
func (n *NJS) Load() float64 {
	if len(n.vsites) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range n.vsites {
		total += v.RMS.Load()
	}
	return total / float64(len(n.vsites))
}

// nextJobID mints "USITE-000001"-style IDs ("USITE-r1-000001" when this NJS
// is a tagged pool replica).
func (n *NJS) nextJobID() core.JobID {
	n.regMu.Lock()
	n.seq++
	seq := n.seq
	n.regMu.Unlock()
	if n.instance != "" {
		return core.JobID(fmt.Sprintf("%s-%s-%06d", n.usite, n.instance, seq))
	}
	return core.JobID(fmt.Sprintf("%s-%06d", n.usite, seq))
}

// job resolves a job ID under the registry read lock. Jobs are never removed
// from the registry, so the returned pointer stays valid.
func (n *NJS) job(id core.JobID) (*unicoreJob, bool) {
	n.regMu.RLock()
	uj, ok := n.jobs[id]
	n.regMu.RUnlock()
	return uj, ok
}

// Consign accepts an AJO for execution — the asynchronous submit of §5.3.
// It validates the job, maps the user at the destination Vsite, checks the
// resource requests against the Vsite's resource page, creates the job
// directory, and begins dispatching. consignID makes retries idempotent;
// ctx carries the caller's distributed trace for per-hop spans.
func (n *NJS) Consign(ctx context.Context, user core.DN, consignID string, job *ajo.AbstractJob) (core.JobID, error) {
	if n.dead.Load() {
		return "", ErrDown
	}
	vsiteTag := string(job.Target.Vsite)
	defer n.tel.StartSpan(ctx, "njs.consign").Note(vsiteTag).End()
	n.tel.Counter("consign_total", "vsite", vsiteTag).Inc()
	inflight := n.tel.Gauge("njs_consign_inflight", "vsite", vsiteTag)
	inflight.Inc()
	ackStart := time.Now()
	defer func() {
		inflight.Dec()
		n.tel.Histogram("consign_ack_seconds", telemetry.ScaleSeconds).ObserveSince(ackStart)
	}()
	if err := job.Validate(); err != nil {
		return "", err
	}
	if job.Target.Usite != n.usite {
		return "", fmt.Errorf("%w: %s (this NJS serves %s)", ErrWrongUsite, job.Target, n.usite)
	}
	vs, ok := n.vsites[job.Target.Vsite]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownVsite, job.Target.Vsite)
	}
	if n.mapLogin == nil {
		return "", ErrNoMapper
	}
	login, err := n.mapLogin(user, job.Target.Vsite)
	if err != nil {
		return "", fmt.Errorf("njs: mapping %s at %s: %w", user, job.Target.Vsite, err)
	}
	// Resource admission: every executable task must fit the Vsite.
	for _, a := range job.Actions {
		if req, ok := ajo.TaskResources(a); ok {
			if err := vs.Page.Check(req); err != nil {
				return "", fmt.Errorf("njs: task %s: %w", a.ID(), err)
			}
		}
	}

	if consignID == "" {
		id, err := n.admit(user, login, job, vs, nil, "")
		if err == nil {
			// Write-ahead contract: the admission record must be durable
			// before the client is told the job was accepted — a crash after
			// the ack may lose later transitions, never the job itself. The
			// store's batched flusher group-commits concurrent consigns.
			// On sync failure the id is returned with the error: the job is
			// admitted and running, only its durability is unconfirmed.
			sp := n.tel.StartSpan(ctx, "njs.journal.sync")
			err = n.SyncJournal()
			sp.End()
		}
		if err == nil && n.dead.Load() {
			// Killed between admit and ack: the recorder may already have
			// been detached, so this admission's durability is unknowable.
			// Refuse the ack — either the record reached the journal (the
			// job recovers) or the client's retry re-consigns it.
			err = ErrDown
		}
		return id, err
	}
	for {
		n.consignMu.Lock()
		e, dup := n.consignIndex[consignID]
		if !dup {
			e = &consignEntry{done: make(chan struct{})}
			n.consignIndex[consignID] = e
			n.consignMu.Unlock()
			id, admitErr := n.admit(user, login, job, vs, nil, consignID)
			err := admitErr
			if err == nil {
				sp := n.tel.StartSpan(ctx, "njs.journal.sync")
				err = n.SyncJournal() // durable before the ack (see above)
				sp.End()
			}
			if err == nil && n.dead.Load() {
				err = ErrDown // killed between admit and ack (see above)
			}
			n.consignMu.Lock()
			if admitErr != nil {
				delete(n.consignIndex, consignID) // let a retry re-attempt
			} else {
				// Keep the reservation even when the durability sync failed:
				// the job is admitted and running, so retries must converge
				// on it (and surface the same error), never duplicate it.
				e.id = id
			}
			e.err = err
			n.consignMu.Unlock()
			close(e.done)
			return id, err
		}
		n.consignMu.Unlock()
		<-e.done // idempotent retry: wait for the admitting caller
		if e.err == nil || e.id != "" {
			return e.id, e.err
		}
		// The attempt we waited on failed before admission and was cleared;
		// try again.
	}
}

// admit creates the job record, registers it, and starts dispatching under
// the new job's own lock. parent is set for locally expanded sub-jobs, in
// which case the caller holds the parent's lock (ancestor→descendant order).
func (n *NJS) admit(user core.DN, login uudb.Login, job *ajo.AbstractJob, vs *Vsite, parent *parentLink, consignID string) (core.JobID, error) {
	id := n.nextJobID()
	jobDir, err := vs.Space.CreateJobDir(id)
	if err != nil {
		return "", fmt.Errorf("njs: creating job directory: %w", err)
	}
	graph, err := job.Graph()
	if err != nil {
		return "", err
	}
	uj := &unicoreJob{
		id:         id,
		owner:      user,
		login:      login,
		job:        job,
		vsite:      vs,
		jobDir:     jobDir,
		graph:      graph,
		consignID:  consignID,
		outcomes:   make(map[ajo.ActionID]*ajo.Outcome, len(job.Actions)),
		done:       make(map[string]bool),
		inflight:   make(map[ajo.ActionID]bool),
		injections: make(map[ajo.ActionID][]injection),
		batch:      make(map[ajo.ActionID]codine.JobID),
		remote:     make(map[ajo.ActionID]*remoteRef),
		children:   make(map[ajo.ActionID]core.JobID),
		parent:     parent,
		submitted:  n.clock.Now(),
	}
	uj.root = ajo.NewOutcome(job)
	uj.root.Status = ajo.StatusRunning
	uj.root.Started = n.clock.Now()
	for _, a := range job.Actions {
		o := ajo.NewOutcome(a)
		uj.outcomes[a.ID()] = o
		uj.root.Children = append(uj.root.Children, o)
	}
	n.regMu.Lock()
	n.jobs[id] = uj
	n.regMu.Unlock()
	n.recordAdmit(uj)
	uj.mu.Lock()
	n.dispatchLocked(uj)
	uj.mu.Unlock()
	return id, nil
}

// dispatchLocked launches every ready action of a job.
func (n *NJS) dispatchLocked(uj *unicoreJob) {
	if uj.held || uj.aborted || uj.root.Status.Terminal() {
		return
	}
	for _, idStr := range uj.graph.Ready(uj.done) {
		aid := ajo.ActionID(idStr)
		if uj.inflight[aid] {
			continue
		}
		a, ok := uj.job.Find(aid)
		if !ok { // cannot happen on a validated job
			continue
		}
		uj.inflight[aid] = true
		n.startActionLocked(uj, a)
	}
	n.finalizeIfDoneLocked(uj)
}

// completeActionLocked records a terminal status for an action, cascades
// NotDone to dependents of failures, and continues dispatching.
func (n *NJS) completeActionLocked(uj *unicoreJob, aid ajo.ActionID, status ajo.Status, reason string) {
	o := uj.outcomes[aid]
	if o == nil || o.Status.Terminal() {
		return
	}
	o.Status = status
	if reason != "" {
		o.Reason = reason
	}
	if o.Finished.IsZero() {
		o.Finished = n.clock.Now()
	}
	uj.done[string(aid)] = true
	delete(uj.inflight, aid)
	n.recordActionDone(uj, aid, o)

	if status == ajo.StatusSuccessful {
		if err := n.propagateFilesLocked(uj, aid); err != nil {
			// A guaranteed dependency file is missing or unreachable: the
			// successors that needed it cannot run.
			n.failSuccessorsNeedingFilesLocked(uj, aid, err)
		}
	} else {
		n.cascadeNotDoneLocked(uj, aid)
	}
	n.dispatchLocked(uj)
}

// cascadeNotDoneLocked marks every descendant of aid as NOT_DONE.
func (n *NJS) cascadeNotDoneLocked(uj *unicoreJob, aid ajo.ActionID) {
	desc, err := uj.graph.Descendants(string(aid))
	if err != nil {
		return
	}
	for _, d := range desc {
		did := ajo.ActionID(d)
		o := uj.outcomes[did]
		if o == nil || o.Status.Terminal() {
			continue
		}
		o.Status = ajo.StatusNotDone
		o.Reason = fmt.Sprintf("predecessor %s did not succeed", aid)
		o.Finished = n.clock.Now()
		uj.done[d] = true
		delete(uj.inflight, did)
		n.recordActionDone(uj, did, o)
	}
}

// failSuccessorsNeedingFilesLocked handles a broken file-dependency edge.
func (n *NJS) failSuccessorsNeedingFilesLocked(uj *unicoreJob, before ajo.ActionID, cause error) {
	for _, dep := range uj.job.Dependencies {
		if dep.Before != before || len(dep.Files) == 0 {
			continue
		}
		o := uj.outcomes[dep.After]
		if o == nil || o.Status.Terminal() {
			continue
		}
		o.Status = ajo.StatusNotDone
		o.Reason = fmt.Sprintf("dependency files unavailable: %v", cause)
		o.Finished = n.clock.Now()
		uj.done[string(dep.After)] = true
		n.recordActionDone(uj, dep.After, o)
		n.cascadeNotDoneLocked(uj, dep.After)
	}
}

// finalizeIfDoneLocked closes the job once every action is terminal.
func (n *NJS) finalizeIfDoneLocked(uj *unicoreJob) {
	if uj.root.Status.Terminal() {
		return
	}
	if len(uj.done) < uj.graph.Len() {
		return
	}
	status := ajo.Aggregate(uj.root.Children)
	if uj.aborted && status != ajo.StatusFailed {
		status = ajo.StatusAborted
	}
	uj.root.Status = status
	uj.root.Finished = n.clock.Now()
	n.recordRootDone(uj)
	if uj.parent != nil {
		// Notify the parent through the clock: the lock order is
		// ancestor→descendant, so a child must never reach up into its
		// parent while holding its own lock.
		link, childID := *uj.parent, uj.id
		n.clock.AfterFunc(0, func() { n.completeChild(link.job, link.action, childID) })
	}
}

// completeChild folds a finished local sub-job into its parent. It runs as a
// clock callback, locking the parent before the child.
func (n *NJS) completeChild(parentID core.JobID, aid ajo.ActionID, childID core.JobID) {
	if n.dead.Load() {
		return
	}
	parent, ok := n.job(parentID)
	if !ok {
		return
	}
	child, ok := n.job(childID)
	if !ok {
		return
	}
	parent.mu.Lock()
	defer parent.mu.Unlock()
	o := parent.outcomes[aid]
	if o == nil || o.Status.Terminal() {
		return
	}
	//lint:allow lockorder childID is parent's sub-job (parentLink set at admit), so parent→child is ancestor→descendant
	child.mu.Lock()
	status := child.root.Status
	started := child.root.Started
	children := child.root.Children
	child.mu.Unlock()
	if !status.Terminal() {
		return
	}
	parent.children[aid] = childID
	// The child is terminal, so its outcome nodes are frozen and safe to
	// share with the parent's tree.
	o.Children = children
	o.Started = started
	reason := ""
	if status != ajo.StatusSuccessful {
		reason = fmt.Sprintf("sub-job %s finished %s", childID, status)
	}
	n.completeActionLocked(parent, aid, status, reason)
	n.finalizeIfDoneLocked(parent)
}

// VsiteLoad reports one Vsite's batch occupancy and backlog, plus the
// replica-pool topology behind it: a single NJS always reports 1/1, while a
// pool.Router reports how many replicas serve the Vsite and how many are
// currently passing health checks — the signal the §6 resource broker uses
// to stop selecting drained sites.
type VsiteLoad struct {
	Load     float64 // fraction of slots in use, [0,1]
	Pending  int     // jobs waiting in the queues
	Inflight int     // consigns currently being admitted (live gauge)
	Replicas int     // NJS replicas serving this Vsite
	Healthy  int     // replicas currently healthy
}

// VsiteLoads reports the occupancy of every configured Vsite — the load
// information a resource broker (paper §6) combines with resource pages.
func (n *NJS) VsiteLoads() map[core.Vsite]VsiteLoad {
	out := make(map[core.Vsite]VsiteLoad, len(n.vsites))
	for name, v := range n.vsites {
		out[name] = VsiteLoad{
			Load:     v.RMS.Load(),
			Pending:  v.RMS.Backlog(),
			Inflight: int(n.tel.Gauge("njs_consign_inflight", "vsite", string(name)).Value()),
			Replicas: 1,
			Healthy:  1,
		}
	}
	return out
}
