package njs

import (
	"bytes"
	"context"
	"hash/crc64"
	"math"
	"sync"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
)

// stagedJob consigns a job whose Uspace holds one file with the given
// content and runs it to completion.
func stagedJob(t *testing.T, n *NJS, clock interface{ RunUntilIdle(int) int }, name string, content []byte) core.JobID {
	t.Helper()
	j := job(name, "T3E", []ajo.Action{
		&ajo.ImportTask{
			Header: ajo.Header{ActionID: "imp", ActionName: "import"},
			Source: ajo.ImportSource{Inline: content},
			To:     "out.dat",
		},
	}, nil)
	id, err := n.Consign(context.Background(), alice, "", j)
	if err != nil {
		t.Fatalf("consign: %v", err)
	}
	clock.RunUntilIdle(100000)
	return id
}

func TestFetchFileChunkEdges(t *testing.T) {
	n, clock := newNJS(t)
	content := make([]byte, 1000)
	for i := range content {
		content[i] = byte(i % 251)
	}
	id := stagedJob(t, n, clock, "fetch-edges", content)
	size := int64(len(content))
	wantCRC := crc64.Checksum(content, crc64.MakeTable(crc64.ECMA))

	t.Run("whole file", func(t *testing.T) {
		r, err := n.FetchFile(id, "out.dat", 0, 0)
		if err != nil || !r.Found {
			t.Fatalf("fetch: found=%v err=%v", r.Found, err)
		}
		if !bytes.Equal(r.Data, content) || r.Size != size || r.CRC != wantCRC {
			t.Fatalf("whole-file fetch mismatch: %d bytes, size=%d", len(r.Data), r.Size)
		}
	})

	t.Run("interior chunk", func(t *testing.T) {
		r, err := n.FetchFile(id, "out.dat", 100, 200)
		if err != nil || !r.Found {
			t.Fatalf("fetch: found=%v err=%v", r.Found, err)
		}
		if !bytes.Equal(r.Data, content[100:300]) || r.Size != size || r.CRC != wantCRC {
			t.Fatalf("chunk mismatch: got %d bytes", len(r.Data))
		}
	})

	t.Run("limit past EOF truncates", func(t *testing.T) {
		r, err := n.FetchFile(id, "out.dat", 900, 500)
		if err != nil || !r.Found {
			t.Fatalf("fetch: found=%v err=%v", r.Found, err)
		}
		if !bytes.Equal(r.Data, content[900:]) {
			t.Fatalf("tail chunk = %d bytes, want %d", len(r.Data), size-900)
		}
	})

	t.Run("offset at EOF is a metadata probe", func(t *testing.T) {
		r, err := n.FetchFile(id, "out.dat", size, 100)
		if err != nil || !r.Found {
			t.Fatalf("fetch: found=%v err=%v", r.Found, err)
		}
		if len(r.Data) != 0 || r.Size != size || r.CRC != wantCRC {
			t.Fatalf("EOF probe: data=%d size=%d crc ok=%v", len(r.Data), r.Size, r.CRC == wantCRC)
		}
	})

	t.Run("offset past EOF is a metadata probe", func(t *testing.T) {
		r, err := n.FetchFile(id, "out.dat", size+1000, 0)
		if err != nil || !r.Found || len(r.Data) != 0 || r.Size != size {
			t.Fatalf("past-EOF probe: found=%v data=%d size=%d err=%v", r.Found, len(r.Data), r.Size, err)
		}
	})

	t.Run("huge wire-supplied limit must not overflow", func(t *testing.T) {
		r, err := n.FetchFile(id, "out.dat", 1, math.MaxInt64)
		if err != nil || !r.Found {
			t.Fatalf("fetch: found=%v err=%v", r.Found, err)
		}
		if !bytes.Equal(r.Data, content[1:]) {
			t.Fatalf("got %d bytes, want %d", len(r.Data), size-1)
		}
	})

	t.Run("negative offset is an error", func(t *testing.T) {
		if _, err := n.FetchFile(id, "out.dat", -1, 0); err == nil {
			t.Fatal("negative offset accepted; want an explicit error")
		}
	})

	t.Run("missing file", func(t *testing.T) {
		r, err := n.FetchFile(id, "no-such.dat", 0, 0)
		if err != nil || r.Found {
			t.Fatalf("missing file: found=%v err=%v", r.Found, err)
		}
	})

	t.Run("unknown job", func(t *testing.T) {
		r, err := n.FetchFile("FZJ-999999", "out.dat", 0, 0)
		if err != nil || r.Found {
			t.Fatalf("unknown job: found=%v err=%v", r.Found, err)
		}
	})
}

// TestConcurrentAbortAndPoll hammers one job with concurrent Poll, Outcome,
// and Control(abort) calls. Under the per-job locking the abort must commit
// atomically: no poller may observe the job regress from a terminal status,
// and the final state is ABORTED. Run with -race.
func TestConcurrentAbortAndPoll(t *testing.T) {
	n, clock := newNJS(t)
	j := job("abort-race", "T3E", []ajo.Action{
		script("s1", "cpu 30m\n"),
		script("s2", "cpu 30m\n"),
	}, nil)
	id, err := n.Consign(context.Background(), alice, "", j)
	if err != nil {
		t.Fatalf("consign: %v", err)
	}
	// Fire only the zero-delay dispatch events: the batch jobs start
	// (RUNNING) but are nowhere near their 30-virtual-minute completion.
	clock.Advance(time.Millisecond)

	const pollers = 8
	var wg sync.WaitGroup
	regressed := make(chan string, pollers)
	for p := 0; p < pollers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sawTerminal := false
			for k := 0; k < 200; k++ {
				r, err := n.Poll(alice, false, id)
				if err != nil || !r.Found {
					regressed <- "poll failed mid-abort"
					return
				}
				if r.Summary.Status.Terminal() {
					sawTerminal = true
				} else if sawTerminal {
					regressed <- "status regressed from terminal to " + r.Summary.Status.String()
					return
				}
				if _, _, err := n.Outcome(alice, false, id); err != nil {
					regressed <- "outcome failed mid-abort"
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The first abort wins; repeats must report "already terminal"
		// rather than corrupt state.
		for k := 0; k < 4; k++ {
			_ = n.Control(alice, false, id, ajo.OpAbort)
		}
	}()
	wg.Wait()
	close(regressed)
	for msg := range regressed {
		t.Error(msg)
	}

	clock.RunUntilIdle(100000) // drain cancelled-batch completions
	r, err := n.Poll(alice, false, id)
	if err != nil || !r.Found {
		t.Fatalf("final poll: found=%v err=%v", r.Found, err)
	}
	if r.Summary.Status != ajo.StatusAborted {
		t.Fatalf("final status = %s, want %s", r.Summary.Status, ajo.StatusAborted)
	}
	if err := n.Control(alice, false, id, ajo.OpAbort); err == nil {
		t.Fatal("abort of a terminal job must error")
	}
}
