package njs

// This file makes the NJS durable: every admission and state transition is
// appended to a write-ahead journal (package journal), and Recover rebuilds
// a site from the newest snapshot plus the journal tail — the "keep jobs
// across restarts" requirement that moving UNICORE from testbed to
// production imposed on the server tier.
//
// # What is journaled
//
//   - admissions (KindAdmit: identity, login, parent link, the AJO in the
//     ajo gob codec),
//   - every terminal action transition, including NOT_DONE cascades and
//     aborts (KindActionDone),
//   - batch lifecycle events (KindActionStart: queued, running),
//   - dependency files staged into unconsigned sub-jobs (KindInject),
//   - sub-jobs consigned to peer Usites (KindRemote),
//   - hold/resume/abort controls (KindControl),
//   - job finalisation (KindRootDone), and
//   - every mutation of the Vsite data spaces, via the vfs observer — so
//     Uspace and Xspace contents (including files written by batch scripts)
//     replay byte-exactly.
//
// Appends are O(1) enqueues on the store's batched flusher: no disk I/O ever
// runs inside a job lock, and the Poll path appends nothing, so durability
// does not serialize the PR-1 sharded-lock hot path.
//
// # Recovery model
//
// Recover(store, cfg, ...) builds a fresh NJS and replays the entry stream
// into it. Replay is idempotent (terminal transitions are never reapplied,
// file writes are last-writer-wins), which is what makes the store's fuzzy
// snapshots converge to the crash-time state. After the caller has re-wired
// the NJS (SetPeers, login mapper), ResumeRecovered finishes the job:
//
//   - rebinds each job's Uspace directory (and removes orphaned directories
//     left by admissions that never reached the journal),
//   - re-arms the poll timers of sub-jobs consigned to peer Usites,
//   - re-links local parent↔child sub-jobs and schedules completion for
//     children that finished before the crash, and
//   - re-dispatches every action that was in flight when the site died.
//     Re-dispatch is safe because imports, exports, transfers, and batch
//     scripts are deterministic against the replayed data spaces, and
//     remote consigns reuse their deterministic consign ID, which peer
//     sites deduplicate.
//
// Work that was buffered but not yet flushed when the process died is lost —
// exactly the write-ahead contract: a job survives iff its admission reached
// the journal. Consign enforces that for acknowledged jobs: it group-commits
// (SyncJournal) after admission and before replying, so a client that was
// told "accepted" never loses the job — only transitions journaled after the
// ack can be lost, and re-dispatch replays those. Sub-jobs expanded locally
// by a dispatching parent are not individually synced; a re-dispatched
// parent re-admits them deterministically.

import (
	"context"
	"errors"
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/codine"
	"unicore/internal/core"
	"unicore/internal/events"
	"unicore/internal/journal"
	"unicore/internal/protocol"
	"unicore/internal/telemetry"
	"unicore/internal/uudb"
	"unicore/internal/vfs"
)

// recorder binds an NJS to a journal store.
type recorder struct {
	store         *journal.Store
	snapshotEvery int64 // logical entries between automatic snapshots; 0 = manual only
	snapshotting  atomic.Bool
}

// AttachJournal starts journaling this NJS's transitions and data-space
// mutations to store. snapshotEvery > 0 arranges an automatic
// snapshot/compaction after that many appended entries. Attach before
// traffic; attaching does not write a snapshot by itself.
func (n *NJS) AttachJournal(store *journal.Store, snapshotEvery int) {
	r := &recorder{store: store, snapshotEvery: int64(snapshotEvery)}
	n.rec.Store(r)
	for name, vs := range n.vsites {
		vsite := string(name)
		vs.Space.FS().Observe(func(m vfs.Mutation) { n.recordFile(vsite, m) })
	}
}

// Journal returns the attached store (nil when durability is disabled).
func (n *NJS) Journal() *journal.Store {
	if r := n.rec.Load(); r != nil {
		return r.store
	}
	return nil
}

// SyncJournal flushes and fsyncs everything journaled so far. Sync latency
// and the group-commit batch size (entries appended since the previous
// sync) are recorded in the telemetry registry.
func (n *NJS) SyncJournal() error {
	r := n.rec.Load()
	if r == nil {
		return nil
	}
	start := time.Now()
	err := r.store.Sync()
	n.tel.Histogram("journal_sync_seconds", telemetry.ScaleSeconds).ObserveSince(start)
	appended := n.tel.Counter("journal_append_total").Value()
	if prev := n.journalSynced.Swap(appended); appended >= prev {
		n.tel.Histogram("journal_sync_batch_entries", telemetry.ScaleCount).Observe(float64(appended - prev))
	}
	return err
}

// Snapshot compacts the journal: the live state is captured as a snapshot
// and older generations are retired. Called on clean shutdown and by the
// automatic cadence.
func (n *NJS) Snapshot() error {
	r := n.rec.Load()
	if r == nil {
		return errors.New("njs: no journal attached")
	}
	return r.store.Compact(n.emitSnapshot)
}

// Kill simulates a crash (or decommissions a replaced NJS): journaling and
// data-space observation stop, and every clock callback that fires afterwards
// is a no-op, so a dead site neither advances state nor reaches its peers.
// The journal store itself stays open — it belongs to the caller, who will
// hand it to Recover.
func (n *NJS) Kill() {
	n.dead.Store(true)
	n.rec.Store(nil)
	for _, vs := range n.vsites {
		vs.Space.FS().Observe(nil)
	}
}

// record appends one logical entry and drives the snapshot cadence. The
// telemetry update is one atomic add — record runs under job locks and
// must stay an O(1) enqueue.
func (n *NJS) record(e journal.Entry) {
	r := n.rec.Load()
	if r == nil {
		return
	}
	r.store.Append(e)
	n.tel.Counter("journal_append_total").Inc()
	if r.snapshotEvery > 0 && r.store.AppendsSinceCompact() >= r.snapshotEvery &&
		r.snapshotting.CompareAndSwap(false, true) {
		// Compaction walks every job under its lock, so it must not run
		// inline here (record is called under job locks); defer it through
		// the clock like every other asynchronous step.
		n.clock.AfterFunc(0, func() {
			defer r.snapshotting.Store(false)
			if n.dead.Load() || n.rec.Load() != r {
				return
			}
			_ = r.store.Compact(n.emitSnapshot)
		})
	}
}

// recordFile journals one data-space mutation (runs under the FS lock — keep
// it an enqueue only).
func (n *NJS) recordFile(vsite string, m vfs.Mutation) {
	if n.dead.Load() {
		return
	}
	var kind journal.Kind
	switch m.Op {
	case vfs.OpWrite:
		kind = journal.KindFileWrite
	case vfs.OpMkdir:
		kind = journal.KindMkdir
	case vfs.OpRemove:
		kind = journal.KindFileRemove
	case vfs.OpRename:
		kind = journal.KindRename
	default:
		return
	}
	n.record(journal.Entry{Kind: kind, File: &journal.FileMutation{
		Vsite: vsite, Path: m.Path, To: m.To, Data: m.Data,
	}})
}

// toJobEventRecord converts one assigned log event into its journal record,
// the single mapping shared by the tail (emitEvent) and the snapshot
// (emitSnapshot) so the two can never drift apart.
func toJobEventRecord(owner core.DN, ev events.Event) *journal.JobEventRecord {
	return &journal.JobEventRecord{
		Owner:    string(owner),
		Job:      string(ev.Job),
		Seq:      ev.Seq,
		Global:   ev.Global,
		Origin:   ev.Origin,
		Type:     string(ev.Type),
		Action:   string(ev.Action),
		Status:   int(ev.Status),
		Reason:   ev.Reason,
		Time:     ev.Time,
		Terminal: ev.Terminal,
	}
}

// emitEvent appends one lifecycle event to the in-memory log (always) and
// journals the assigned record (when a journal is attached), so a recovered
// replica restores the log with the exact cursor numbering subscribers hold.
// Called under the job's lock, like the journal hooks; both are O(1).
func (n *NJS) emitEvent(uj *unicoreJob, ev events.Event) {
	ev.Job = uj.id
	ev.Time = n.clock.Now()
	ev = n.log.Append(uj.owner, ev)
	if n.rec.Load() == nil {
		return
	}
	n.record(journal.Entry{Kind: journal.KindJobEvent, Event: toJobEventRecord(uj.owner, ev)})
}

func (n *NJS) recordAdmit(uj *unicoreJob) {
	n.emitEvent(uj, events.Event{Type: events.TypeAdmitted, Status: ajo.StatusRunning})
	if n.rec.Load() == nil {
		return
	}
	raw, err := ajo.MarshalGob(uj.job)
	if err != nil {
		return // a job that came through Validate always marshals
	}
	adm := &journal.Admission{
		Job:       string(uj.id),
		Owner:     string(uj.owner),
		UID:       uj.login.UID,
		Groups:    uj.login.Groups,
		Project:   uj.login.Project,
		Vsite:     string(uj.vsite.Name),
		AJO:       raw,
		ConsignID: uj.consignID,
		Submitted: uj.submitted,
	}
	if uj.parent != nil {
		adm.ParentJob = string(uj.parent.job)
		adm.ParentAction = string(uj.parent.action)
	}
	n.record(journal.Entry{Kind: journal.KindAdmit, Admit: adm})
}

// actionEventOf captures an outcome as a journal event. Sub-job outcomes
// (those carrying children) are serialized as a tree.
func actionEventOf(uj *unicoreJob, aid ajo.ActionID, o *ajo.Outcome) *journal.ActionEvent {
	ev := &journal.ActionEvent{
		Job:      string(uj.id),
		Action:   string(aid),
		Status:   int(o.Status),
		Reason:   o.Reason,
		ExitCode: o.ExitCode,
		Stdout:   o.Stdout,
		Stderr:   o.Stderr,
		Started:  o.Started,
		Finished: o.Finished,
	}
	for _, f := range o.Files {
		ev.Files = append(ev.Files, journal.FileStat{Path: f.Path, Size: f.Size, CRC: f.CRC})
	}
	if len(o.Children) > 0 {
		if raw, err := ajo.MarshalOutcome(o); err == nil {
			ev.Tree = raw
		}
	}
	return ev
}

func (n *NJS) recordActionDone(uj *unicoreJob, aid ajo.ActionID, o *ajo.Outcome) {
	n.emitEvent(uj, events.Event{Type: events.TypeActionDone, Action: aid, Status: o.Status, Reason: o.Reason})
	if n.rec.Load() == nil {
		return
	}
	n.record(journal.Entry{Kind: journal.KindActionDone, Action: actionEventOf(uj, aid, o)})
}

func (n *NJS) recordActionStart(uj *unicoreJob, aid ajo.ActionID, status ajo.Status) {
	n.emitEvent(uj, events.Event{Type: events.TypeStatus, Action: aid, Status: status})
	if n.rec.Load() == nil {
		return
	}
	n.record(journal.Entry{Kind: journal.KindActionStart, Action: &journal.ActionEvent{
		Job: string(uj.id), Action: string(aid), Status: int(status),
	}})
}

func (n *NJS) recordInject(uj *unicoreJob, after ajo.ActionID, name string, data []byte) {
	if n.rec.Load() == nil {
		return
	}
	n.record(journal.Entry{Kind: journal.KindInject, Inject: &journal.Injection{
		Job: string(uj.id), After: string(after), Name: name, Data: data,
	}})
}

func (n *NJS) recordRemote(uj *unicoreJob, aid ajo.ActionID, ref *remoteRef) {
	if n.rec.Load() == nil {
		return
	}
	n.record(journal.Entry{Kind: journal.KindRemote, Remote: &journal.RemoteLink{
		Job: string(uj.id), Action: string(aid), Usite: string(ref.usite), RemoteJob: string(ref.job),
	}})
}

func (n *NJS) recordControl(uj *unicoreJob, op ajo.ControlOp) {
	n.emitEvent(uj, events.Event{Type: events.TypeControl, Status: uj.root.Status, Reason: string(op)})
	if n.rec.Load() == nil {
		return
	}
	n.record(journal.Entry{Kind: journal.KindControl, Control: &journal.ControlEvent{
		Job: string(uj.id), Op: string(op),
	}})
}

func (n *NJS) recordRootDone(uj *unicoreJob) {
	n.emitEvent(uj, events.Event{Type: events.TypeJobDone, Status: uj.root.Status, Terminal: true})
	if n.rec.Load() == nil {
		return
	}
	n.record(journal.Entry{Kind: journal.KindRootDone, Root: &journal.RootEvent{
		Job: string(uj.id), Status: int(uj.root.Status), Finished: uj.root.Finished,
	}})
}

// --- snapshot emission ---

// emitSnapshot writes the minimal entry stream that rebuilds the live state:
// the ID counter, both data-space trees of every Vsite, then every job in
// admission order. It runs while traffic continues; per-job consistency
// comes from the job locks, and any transition racing the capture is also in
// the post-rotation journal tail, which replay converges (see package
// journal).
func (n *NJS) emitSnapshot(emit func(journal.Entry) error) error {
	n.regMu.RLock()
	seq := n.seq
	jobs := make([]*unicoreJob, 0, len(n.jobs))
	for _, uj := range n.jobs {
		jobs = append(jobs, uj)
	}
	n.regMu.RUnlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].id < jobs[j].id })

	if err := emit(journal.Entry{Kind: journal.KindSeq, Seq: seq}); err != nil {
		return err
	}
	for _, name := range n.VsiteNames() {
		if err := n.emitDataSpace(string(name), n.vsites[name].Space.FS(), emit); err != nil {
			return err
		}
	}
	for _, uj := range jobs {
		if err := n.emitJob(uj, emit); err != nil {
			return err
		}
	}
	// The retained event log rides in the snapshot with its original
	// numbering, so compaction never invalidates a subscriber's cursor.
	for _, ev := range n.log.Snapshot() {
		owner, _ := n.log.Owner(ev.Job)
		if err := emit(journal.Entry{Kind: journal.KindJobEvent, Event: toJobEventRecord(owner, ev)}); err != nil {
			return err
		}
	}
	return nil
}

// emitDataSpace dumps one Vsite's file tree (directories included, so empty
// job directories survive).
func (n *NJS) emitDataSpace(vsite string, fs *vfs.FS, emit func(journal.Entry) error) error {
	var rec func(dir string) error
	rec = func(dir string) error {
		entries, err := fs.List(dir)
		if err != nil {
			return nil // raced a removal; the tail journal has the truth
		}
		for _, e := range entries {
			if e.IsDir {
				if err := emit(journal.Entry{Kind: journal.KindMkdir,
					File: &journal.FileMutation{Vsite: vsite, Path: e.Path}}); err != nil {
					return err
				}
				if err := rec(e.Path); err != nil {
					return err
				}
				continue
			}
			data, err := fs.ReadFile(e.Path)
			if err != nil {
				continue // raced a removal
			}
			if err := emit(journal.Entry{Kind: journal.KindFileWrite,
				File: &journal.FileMutation{Vsite: vsite, Path: e.Path, Data: data}}); err != nil {
				return err
			}
		}
		return nil
	}
	return rec("/")
}

// emitJob captures one job under its lock.
func (n *NJS) emitJob(uj *unicoreJob, emit func(journal.Entry) error) error {
	raw, err := ajo.MarshalGob(uj.job)
	if err != nil {
		return err
	}
	uj.mu.Lock()
	defer uj.mu.Unlock()

	adm := &journal.Admission{
		Job:       string(uj.id),
		Owner:     string(uj.owner),
		UID:       uj.login.UID,
		Groups:    uj.login.Groups,
		Project:   uj.login.Project,
		Vsite:     string(uj.vsite.Name),
		AJO:       raw,
		ConsignID: uj.consignID,
		Submitted: uj.submitted,
	}
	if uj.parent != nil {
		adm.ParentJob = string(uj.parent.job)
		adm.ParentAction = string(uj.parent.action)
	}
	entries := []journal.Entry{{Kind: journal.KindAdmit, Admit: adm}}
	if uj.held {
		entries = append(entries, journal.Entry{Kind: journal.KindControl,
			Control: &journal.ControlEvent{Job: string(uj.id), Op: string(ajo.OpHold)}})
	}
	if uj.aborted {
		entries = append(entries, journal.Entry{Kind: journal.KindControl,
			Control: &journal.ControlEvent{Job: string(uj.id), Op: string(ajo.OpAbort)}})
	}
	for _, aid := range sortedActionIDs(uj.outcomes) {
		o := uj.outcomes[aid]
		switch {
		case o.Status.Terminal():
			entries = append(entries, journal.Entry{Kind: journal.KindActionDone,
				Action: actionEventOf(uj, aid, o)})
		case o.Status != ajo.StatusPending:
			entries = append(entries, journal.Entry{Kind: journal.KindActionStart,
				Action: &journal.ActionEvent{Job: string(uj.id), Action: string(aid), Status: int(o.Status)}})
		}
	}
	for _, after := range sortedActionIDs(uj.injections) {
		for _, inj := range uj.injections[after] {
			entries = append(entries, journal.Entry{Kind: journal.KindInject,
				Inject: &journal.Injection{Job: string(uj.id), After: string(after), Name: inj.name, Data: inj.data}})
		}
	}
	for _, aid := range sortedActionIDs(uj.remote) {
		ref := uj.remote[aid]
		entries = append(entries, journal.Entry{Kind: journal.KindRemote,
			Remote: &journal.RemoteLink{Job: string(uj.id), Action: string(aid),
				Usite: string(ref.usite), RemoteJob: string(ref.job)}})
	}
	if uj.root.Status.Terminal() {
		entries = append(entries, journal.Entry{Kind: journal.KindRootDone,
			Root: &journal.RootEvent{Job: string(uj.id), Status: int(uj.root.Status), Finished: uj.root.Finished}})
	}
	for _, e := range entries {
		if err := emit(e); err != nil {
			return err
		}
	}
	return nil
}

func sortedActionIDs[V any](m map[ajo.ActionID]V) []ajo.ActionID {
	out := make([]ajo.ActionID, 0, len(m))
	for aid := range m {
		out = append(out, aid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- recovery ---

// Recover builds an NJS from cfg and replays the journal store into it, then
// attaches the store so post-recovery transitions are journaled (with the
// given automatic snapshot cadence; see AttachJournal).
//
// The returned NJS serves status/outcome requests immediately, but holds all
// recovered in-flight work until ResumeRecovered is called — the caller must
// first re-wire the pieces recovery cannot know: the peer client (SetPeers)
// and the login mapper (normally the gateway).
func Recover(store *journal.Store, cfg Config, snapshotEvery int) (*NJS, error) {
	n, err := New(cfg)
	if err != nil {
		return nil, err
	}
	// Replay is single-threaded and pre-traffic. Quotas are lifted while
	// replaying: the fuzzy snapshot may transiently re-create files that a
	// later entry removes, and the final state fit the quota when it was
	// journaled.
	quotas := make(map[core.Vsite]int64, len(n.vsites))
	for name, vs := range n.vsites {
		fs := vs.Space.FS()
		quotas[name] = fs.Quota()
		fs.SetQuota(0)
	}
	if err := store.Replay(n.applyEntry); err != nil {
		return nil, err
	}
	for name, vs := range n.vsites {
		vs.Space.FS().SetQuota(quotas[name])
	}
	// The replayed file trees carry every acknowledged staged-upload chunk
	// and metadata document; rebuild the spool indexes from them so uploads
	// survive the crash with their handles and watermarks intact.
	for _, sp := range n.spools {
		if err := sp.Rescan(); err != nil {
			return nil, err
		}
	}
	n.AttachJournal(store, snapshotEvery)
	return n, nil
}

// ResumeRecovered finishes a recovery once the NJS is fully wired: it
// rebinds Uspace directories, removes orphans, re-arms remote poll timers,
// re-links finished children, and re-dispatches everything that was in
// flight. Calling it on an NJS that was not recovered (or twice) is a no-op
// for jobs that are already running normally.
func (n *NJS) ResumeRecovered() {
	n.regMu.RLock()
	jobs := make([]*unicoreJob, 0, len(n.jobs))
	for _, uj := range n.jobs {
		jobs = append(jobs, uj)
	}
	n.regMu.RUnlock()
	// Admission order (IDs are zero-padded, so lexicographic = numeric):
	// parents resume before their children.
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].id < jobs[j].id })

	known := make(map[string]bool, len(jobs))
	for _, uj := range jobs {
		known[string(uj.id)] = true
		// Rebind the job's Uspace directory (idempotent).
		_ = uj.vsite.Space.FS().MkdirAll(uj.jobDir)
	}
	// Remove orphaned job directories: an admission that died before its
	// journal entry was flushed may have left a directory behind, and a
	// re-dispatched parent must be able to re-admit that sub-job.
	for _, vs := range n.vsites {
		fs := vs.Space.FS()
		entries, err := fs.List(vs.Space.UspaceRoot())
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir && !known[e.Name] {
				_ = fs.RemoveAll(e.Path)
			}
		}
	}

	var remotes []remoteRef
	for _, uj := range jobs {
		uj.mu.Lock()
		if uj.root.Status.Terminal() {
			uj.mu.Unlock()
			continue
		}
		if uj.aborted {
			// A crash can land between the journaled abort control and its
			// per-action cancellations, recovering the job aborted but
			// non-terminal. dispatchLocked refuses aborted jobs, so finish
			// the abort here or the job stays non-terminal forever.
			_ = n.abortLocked(uj, &remotes)
			uj.mu.Unlock()
			continue
		}
		// Sub-jobs at peer Usites: keep polling where we left off.
		for _, aid := range sortedActionIDs(uj.remote) {
			if o := uj.outcomes[aid]; o != nil && !o.Status.Terminal() {
				uj.inflight[aid] = true
				n.scheduleRemotePollLocked(uj.id, aid, uj.remote[aid])
			}
		}
		// Locally expanded sub-jobs: the child drives itself; a child that
		// finished before the crash completes the parent action through the
		// clock, exactly as live finalisation would have.
		for _, aid := range sortedActionIDs(uj.children) {
			o := uj.outcomes[aid]
			if o == nil || o.Status.Terminal() {
				continue
			}
			uj.inflight[aid] = true
			childID := uj.children[aid]
			if child, ok := n.job(childID); ok {
				child.mu.Lock() // ancestor→descendant order
				terminal := child.root.Status.Terminal()
				child.mu.Unlock()
				if terminal {
					parentID, action := uj.id, aid
					n.clock.AfterFunc(0, func() { n.completeChild(parentID, action, childID) })
				}
			}
		}
		// Everything else that was in flight is re-dispatched from its last
		// journaled state.
		n.dispatchLocked(uj)
		uj.mu.Unlock()
	}
	// Best-effort peer aborts for remote sub-jobs of resumed aborts, issued
	// outside all locks (mirrors abortJob).
	if peers := n.peerClient(); peers != nil {
		for _, ref := range remotes {
			_ = peers.Call(context.Background(), ref.usite, protocol.MsgControl,
				protocol.ControlRequest{Job: ref.job, Op: ajo.OpAbort}, nil)
		}
	}
}

// applyEntry replays one journal entry. Replay runs before traffic, so it
// mutates job state without locks; every application is idempotent.
func (n *NJS) applyEntry(e journal.Entry) error {
	switch e.Kind {
	case journal.KindFileWrite, journal.KindFileRemove, journal.KindMkdir, journal.KindRename:
		return n.applyFile(e)
	case journal.KindAdmit:
		return n.applyAdmit(e.Admit)
	case journal.KindActionStart:
		return n.applyActionStart(e.Action)
	case journal.KindActionDone:
		return n.applyActionDone(e.Action)
	case journal.KindInject:
		return n.applyInject(e.Inject)
	case journal.KindRemote:
		return n.applyRemote(e.Remote)
	case journal.KindControl:
		return n.applyControl(e.Control)
	case journal.KindRootDone:
		return n.applyRootDone(e.Root)
	case journal.KindJobEvent:
		return n.applyJobEvent(e.Event)
	case journal.KindSeq:
		if e.Seq > n.seq {
			n.seq = e.Seq
		}
		return nil
	}
	// Unknown kinds are skipped: a newer writer may have added entry types
	// this reader does not need.
	return nil
}

func (n *NJS) applyFile(e journal.Entry) error {
	m := e.File
	if m == nil {
		return fmt.Errorf("njs: %s entry without file payload", e.Kind)
	}
	vs, ok := n.vsites[core.Vsite(m.Vsite)]
	if !ok {
		return fmt.Errorf("njs: journal names unknown vsite %q", m.Vsite)
	}
	fs := vs.Space.FS()
	switch e.Kind {
	case journal.KindFileWrite:
		if err := fs.MkdirAll(path.Dir(m.Path)); err != nil {
			return err
		}
		return fs.WriteFile(m.Path, m.Data)
	case journal.KindMkdir:
		return fs.MkdirAll(m.Path)
	case journal.KindFileRemove:
		return fs.RemoveAll(m.Path)
	case journal.KindRename:
		if !fs.Exists(m.Path) {
			return nil // already applied (fuzzy snapshot) — later entries converge
		}
		_ = fs.RemoveAll(m.To)
		if err := fs.MkdirAll(path.Dir(m.To)); err != nil {
			return err
		}
		return fs.Rename(m.Path, m.To)
	}
	return nil
}

func (n *NJS) applyAdmit(a *journal.Admission) error {
	if a == nil {
		return errors.New("njs: admit entry without payload")
	}
	id := core.JobID(a.Job)
	if _, exists := n.jobs[id]; exists {
		return nil // snapshot + tail overlap
	}
	vs, ok := n.vsites[core.Vsite(a.Vsite)]
	if !ok {
		return fmt.Errorf("njs: job %s admitted at unknown vsite %q", id, a.Vsite)
	}
	act, err := ajo.UnmarshalGob(a.AJO)
	if err != nil {
		return fmt.Errorf("njs: replaying %s: %w", id, err)
	}
	job, ok := act.(*ajo.AbstractJob)
	if !ok {
		return fmt.Errorf("njs: replaying %s: AJO decoded as %T", id, act)
	}
	graph, err := job.Graph()
	if err != nil {
		return err
	}
	uj := &unicoreJob{
		id:         id,
		owner:      core.DN(a.Owner),
		login:      uudb.Login{UID: a.UID, Groups: a.Groups, Project: a.Project},
		job:        job,
		vsite:      vs,
		jobDir:     vs.Space.JobDir(id),
		graph:      graph,
		consignID:  a.ConsignID,
		submitted:  a.Submitted,
		outcomes:   make(map[ajo.ActionID]*ajo.Outcome, len(job.Actions)),
		done:       make(map[string]bool),
		inflight:   make(map[ajo.ActionID]bool),
		injections: make(map[ajo.ActionID][]injection),
		batch:      make(map[ajo.ActionID]codine.JobID),
		remote:     make(map[ajo.ActionID]*remoteRef),
		children:   make(map[ajo.ActionID]core.JobID),
	}
	uj.root = ajo.NewOutcome(job)
	uj.root.Status = ajo.StatusRunning
	uj.root.Started = a.Submitted
	for _, act := range job.Actions {
		o := ajo.NewOutcome(act)
		uj.outcomes[act.ID()] = o
		uj.root.Children = append(uj.root.Children, o)
	}
	if a.ParentJob != "" {
		uj.parent = &parentLink{job: core.JobID(a.ParentJob), action: ajo.ActionID(a.ParentAction)}
		if parent, ok := n.jobs[uj.parent.job]; ok {
			parent.children[uj.parent.action] = id
		}
	}
	n.jobs[id] = uj
	if s := jobSeq(id); s > n.seq {
		n.seq = s
	}
	if a.ConsignID != "" {
		done := make(chan struct{})
		close(done)
		n.consignIndex[a.ConsignID] = &consignEntry{done: done, id: id}
	}
	return nil
}

// jobSeq extracts the numeric suffix of a minted job ID.
func jobSeq(id core.JobID) int64 {
	s := string(id)
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return 0
	}
	v, err := strconv.ParseInt(s[i+1:], 10, 64)
	if err != nil {
		return 0
	}
	return v
}

func (n *NJS) replayJobAction(ev *journal.ActionEvent) (*unicoreJob, *ajo.Outcome) {
	if ev == nil {
		return nil, nil
	}
	uj, ok := n.jobs[core.JobID(ev.Job)]
	if !ok {
		return nil, nil
	}
	return uj, uj.outcomes[ajo.ActionID(ev.Action)]
}

func (n *NJS) applyActionStart(ev *journal.ActionEvent) error {
	uj, o := n.replayJobAction(ev)
	if uj == nil || o == nil || o.Status.Terminal() {
		return nil
	}
	o.Status = ajo.Status(ev.Status)
	return nil
}

func (n *NJS) applyActionDone(ev *journal.ActionEvent) error {
	uj, o := n.replayJobAction(ev)
	if uj == nil || o == nil || o.Status.Terminal() {
		return nil
	}
	if len(ev.Tree) > 0 {
		if node, err := ajo.UnmarshalOutcome(ev.Tree); err == nil {
			o.Status = node.Status
			o.Reason = node.Reason
			o.ExitCode = node.ExitCode
			o.Stdout = node.Stdout
			o.Stderr = node.Stderr
			o.Files = node.Files
			o.Started = node.Started
			o.Finished = node.Finished
			o.Children = node.Children
			uj.done[ev.Action] = true
			delete(uj.inflight, ajo.ActionID(ev.Action))
			return nil
		}
	}
	o.Status = ajo.Status(ev.Status)
	o.Reason = ev.Reason
	o.ExitCode = ev.ExitCode
	o.Stdout = ev.Stdout
	o.Stderr = ev.Stderr
	o.Files = nil
	for _, f := range ev.Files {
		o.Files = append(o.Files, ajo.FileRecord{Path: f.Path, Size: f.Size, CRC: f.CRC})
	}
	o.Started = ev.Started
	o.Finished = ev.Finished
	uj.done[ev.Action] = true
	delete(uj.inflight, ajo.ActionID(ev.Action))
	return nil
}

func (n *NJS) applyInject(in *journal.Injection) error {
	if in == nil {
		return nil
	}
	uj, ok := n.jobs[core.JobID(in.Job)]
	if !ok {
		return nil
	}
	after := ajo.ActionID(in.After)
	for _, existing := range uj.injections[after] {
		if existing.name == in.Name {
			return nil // snapshot + tail overlap
		}
	}
	uj.injections[after] = append(uj.injections[after], injection{name: in.Name, data: in.Data})
	return nil
}

func (n *NJS) applyRemote(r *journal.RemoteLink) error {
	if r == nil {
		return nil
	}
	uj, ok := n.jobs[core.JobID(r.Job)]
	if !ok {
		return nil
	}
	uj.remote[ajo.ActionID(r.Action)] = &remoteRef{
		usite: core.Usite(r.Usite), job: core.JobID(r.RemoteJob),
	}
	return nil
}

func (n *NJS) applyControl(c *journal.ControlEvent) error {
	if c == nil {
		return nil
	}
	uj, ok := n.jobs[core.JobID(c.Job)]
	if !ok {
		return nil
	}
	switch ajo.ControlOp(c.Op) {
	case ajo.OpAbort:
		uj.aborted = true
	case ajo.OpHold:
		uj.held = true
	case ajo.OpResume:
		uj.held = false
	}
	return nil
}

// applyJobEvent restores one subscription event into the event log with its
// original sequence numbers; Restore drops snapshot+tail duplicates.
func (n *NJS) applyJobEvent(r *journal.JobEventRecord) error {
	if r == nil {
		return nil
	}
	n.log.Restore(core.DN(r.Owner), events.Event{
		Job:      core.JobID(r.Job),
		Seq:      r.Seq,
		Global:   r.Global,
		Origin:   r.Origin,
		Type:     events.Type(r.Type),
		Action:   ajo.ActionID(r.Action),
		Status:   ajo.Status(r.Status),
		Reason:   r.Reason,
		Time:     r.Time,
		Terminal: r.Terminal,
	})
	return nil
}

func (n *NJS) applyRootDone(r *journal.RootEvent) error {
	if r == nil {
		return nil
	}
	uj, ok := n.jobs[core.JobID(r.Job)]
	if !ok {
		return nil
	}
	if uj.root.Status.Terminal() {
		return nil
	}
	uj.root.Status = ajo.Status(r.Status)
	uj.root.Finished = r.Finished
	return nil
}
