package njs

import (
	"context"
	"fmt"
	"sort"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/protocol"
	"unicore/internal/resources"
	"unicore/internal/telemetry"
)

// Service is the NJS service surface as the gateway consumes it: everything
// the paper's "UNICORE server" tier (§4.2) answers on behalf of a site —
// consignment (§5.3), status/outcome/control (§5.5), resource pages (§5.4),
// Uspace file transfers (§5.6), and the load figures the §6 broker reads.
//
// *NJS implements Service directly (one supervisor per site, the topology of
// Figure 2). pool.Router also implements it by fanning the same calls out
// over per-Vsite replica sets, which is what lets a gateway scale from one
// NJS to a health-checked replica pool without changing its request path.
type Service interface {
	// Usite returns the site this service fronts.
	Usite() core.Usite
	// Consign admits an AJO (§5.3); consignID makes retries idempotent. ctx
	// carries the caller's distributed trace for per-hop telemetry spans.
	Consign(ctx context.Context, user core.DN, consignID string, job *ajo.AbstractJob) (core.JobID, error)
	// Poll returns the compact status summary of a job.
	Poll(caller core.DN, asServer bool, id core.JobID) (protocol.PollReply, error)
	// Outcome returns a deep copy of a job's outcome tree.
	Outcome(caller core.DN, asServer bool, id core.JobID) (*ajo.Outcome, bool, error)
	// List returns the caller's jobs at this Usite, newest first.
	List(caller core.DN) ([]protocol.JobInfo, error)
	// Control aborts, holds, or resumes a job.
	Control(caller core.DN, asServer bool, id core.JobID, op ajo.ControlOp) error
	// FetchFile serves a chunk of a job's Uspace file to a peer NJS (§5.6).
	FetchFile(id core.JobID, file string, offset, limit int64) (protocol.TransferReply, error)
	// FetchFileOwned serves a chunk of a job's Uspace file to its owner.
	FetchFileOwned(caller core.DN, asServer bool, id core.JobID, file string, offset, limit int64) (protocol.TransferReply, error)
	// StageOpen begins a staged upload into a Vsite's spool (protocol v2).
	StageOpen(caller core.DN, asServer bool, req protocol.PutOpenRequest) (protocol.PutOpenReply, error)
	// StageChunk stores one idempotent, CRC-checked chunk of a staged upload.
	StageChunk(caller core.DN, asServer bool, req protocol.PutChunkRequest) (protocol.PutChunkReply, error)
	// StageCommit seals a staged upload after verifying the whole-file CRC.
	StageCommit(caller core.DN, asServer bool, req protocol.PutCommitRequest) (protocol.PutCommitReply, error)
	// Pages returns the resource pages of all Vsites, sorted by target (§5.4).
	Pages() []resources.Page
	// Load reports the mean batch occupancy across Vsites in [0,1].
	Load() float64
	// VsiteLoads reports per-Vsite occupancy and replica health (§6 input).
	VsiteLoads() map[core.Vsite]VsiteLoad
	// SetLoginMapper installs the DN→login resolver of the security tier.
	SetLoginMapper(LoginMapper)
	// Ping reports whether the service can currently take responsibility for
	// work — the active health probe of a replica pool.
	Ping() error
	// Events returns the buffered job lifecycle events past the request's
	// cursor (protocol v2, non-blocking; the gateway long-polls around it).
	Events(caller core.DN, asServer bool, req protocol.SubscribeRequest) (protocol.EventsReply, error)
	// EventsNotify returns a channel that is closed when new events may be
	// available, plus a release func the waiter must call when done. Take the
	// channel before fetching so an append racing the fetch is never missed;
	// wakeups may be spurious (re-fetch and wait again).
	EventsNotify(req protocol.SubscribeRequest) (<-chan struct{}, func())
	// Metrics returns live telemetry snapshots, one per origin behind this
	// service (a single NJS returns one; a pool Router returns the pool's
	// own plus each replica's). Serves the v2 MsgMetrics scrape.
	Metrics() []telemetry.Snapshot
}

// Service is satisfied by the concrete NJS.
var _ Service = (*NJS)(nil)

// Ping reports nil while this NJS is alive and ErrDown once it has been
// killed (crash simulation or decommission) — the health-check probe a
// replica pool uses to trip a replica's circuit breaker.
func (n *NJS) Ping() error {
	if n.dead.Load() {
		return ErrDown
	}
	return nil
}

// Instance returns the replica tag this NJS mints job IDs under ("" for a
// single-NJS site).
func (n *NJS) Instance() string { return n.instance }

// Telemetry returns this NJS's metrics registry — the testbed hook through
// which integration tests and benchmarks assert on internal measurements.
func (n *NJS) Telemetry() *telemetry.Registry { return n.tel }

// Metrics returns this NJS's telemetry snapshot. Scrape-time gauges —
// event-log depth and staged-upload spool occupancy — are refreshed before
// sampling so the snapshot reflects live state, not the last hot-path
// update.
func (n *NJS) Metrics() []telemetry.Snapshot {
	n.tel.Gauge("event_log_depth").Set(int64(n.log.Depth()))
	for name, spool := range n.spools {
		n.tel.Gauge("staging_spool_handles", "vsite", string(name)).Set(int64(len(spool.Handles())))
	}
	return []telemetry.Snapshot{n.tel.Snapshot()}
}

// defaultEventBatch bounds one MsgEventsReply when the subscriber did not ask
// for a smaller batch.
const defaultEventBatch = 256

// Events returns buffered lifecycle events past the request's cursor: one
// job's stream (per-job Seq cursor) when req.Job is set, otherwise the
// caller's stream across all their jobs at this NJS (per-origin Global
// cursor). The read is idempotent — a subscriber whose reply was lost in
// transit re-issues the same cursor and observes no gaps and no duplicates.
func (n *NJS) Events(caller core.DN, asServer bool, req protocol.SubscribeRequest) (protocol.EventsReply, error) {
	max := req.Max
	if max <= 0 || max > defaultEventBatch {
		max = defaultEventBatch
	}
	if req.Job != "" {
		uj, ok := n.job(req.Job)
		if !ok {
			return protocol.EventsReply{}, fmt.Errorf("%w: %s", ErrUnknownJob, req.Job)
		}
		if err := n.auth(uj, caller, asServer); err != nil {
			return protocol.EventsReply{}, err
		}
		evs, gap := n.log.JobEvents(req.Job, req.Cursor, max)
		cursor := req.Cursor
		if len(evs) > 0 {
			cursor = evs[len(evs)-1].Seq
		}
		return protocol.EventsReply{Events: evs, Cursor: cursor, Gap: gap}, nil
	}
	after := req.Cursor
	if v, ok := req.Origins[n.log.Origin()]; ok {
		after = v
	}
	evs, next, gap := n.log.UserEvents(caller, after, max)
	return protocol.EventsReply{
		Events:  evs,
		Origins: map[string]uint64{n.log.Origin(): next},
		Gap:     gap,
	}, nil
}

// EventsNotify returns the event log's append broadcast channel. The NJS has
// one log, so every subscription scope shares the channel; wakeups for
// unrelated jobs are spurious but harmless.
func (n *NJS) EventsNotify(protocol.SubscribeRequest) (<-chan struct{}, func()) {
	return n.log.Notify(), func() {}
}

// ConsignedJobs reports the completed consign-ID → job-ID admissions of
// this NJS (pool.ConsignReporter): the index a replica pool reconciles
// against its acknowledgements when this NJS joins or rejoins a set, so a
// recovered replica's admissions are adopted — or, if re-admitted elsewhere
// by consign failover while this NJS was dead, aborted as orphans.
// Reservations still in flight are excluded.
func (n *NJS) ConsignedJobs() map[string]core.JobID {
	n.consignMu.Lock()
	defer n.consignMu.Unlock()
	out := make(map[string]core.JobID, len(n.consignIndex))
	for cid, e := range n.consignIndex {
		select {
		case <-e.done:
			if e.id != "" {
				out[cid] = e.id
			}
		default:
		}
	}
	return out
}

// This file is the NJS's service surface: the operations behind the JMC's
// status/outcome/control requests and the peer-NJS transfer endpoint. The
// gateway authenticates callers and invokes these methods; asServer marks
// requests signed by a peer UNICORE server rather than by the owning user.
//
// Each operation locks only the job it touches (see the package comment for
// the concurrency model), so requests for different jobs never contend.

// auth checks that caller may operate on the job. The owner is immutable
// after admission, so no lock is needed.
func (n *NJS) auth(uj *unicoreJob, caller core.DN, asServer bool) error {
	if asServer {
		return nil // peer servers act on behalf of the consigning site
	}
	if uj.owner != caller {
		return fmt.Errorf("%w: job %s belongs to %s", ErrNotAuthorized, uj.id, uj.owner)
	}
	return nil
}

// Poll returns the compact status summary of a job (JMC traffic lights).
func (n *NJS) Poll(caller core.DN, asServer bool, id core.JobID) (protocol.PollReply, error) {
	uj, ok := n.job(id)
	if !ok {
		return protocol.PollReply{Found: false}, nil
	}
	if err := n.auth(uj, caller, asServer); err != nil {
		return protocol.PollReply{}, err
	}
	uj.mu.Lock()
	s := ajo.Summarise(uj.root)
	uj.mu.Unlock()
	s.Job = string(id)
	s.Updated = n.clock.Now()
	return protocol.PollReply{Found: true, Summary: s}, nil
}

// Outcome returns a deep copy of the job's outcome tree. The tree is
// serialized under the job's lock; the copy is decoded outside it.
func (n *NJS) Outcome(caller core.DN, asServer bool, id core.JobID) (*ajo.Outcome, bool, error) {
	uj, ok := n.job(id)
	if !ok {
		return nil, false, nil
	}
	if err := n.auth(uj, caller, asServer); err != nil {
		return nil, false, err
	}
	uj.mu.Lock()
	raw, err := ajo.MarshalOutcome(uj.root)
	uj.mu.Unlock()
	if err != nil {
		return nil, false, err
	}
	cp, err := ajo.UnmarshalOutcome(raw)
	if err != nil {
		return nil, false, err
	}
	return cp, true, nil
}

// List returns the caller's jobs at this Usite, newest first.
func (n *NJS) List(caller core.DN) ([]protocol.JobInfo, error) {
	n.regMu.RLock()
	mine := make([]*unicoreJob, 0, len(n.jobs))
	for _, uj := range n.jobs {
		if uj.owner != caller || uj.parent != nil {
			continue // children are reported inside their parents
		}
		mine = append(mine, uj)
	}
	n.regMu.RUnlock()
	out := make([]protocol.JobInfo, 0, len(mine))
	for _, uj := range mine {
		uj.mu.Lock()
		status := uj.root.Status
		uj.mu.Unlock()
		out = append(out, protocol.JobInfo{
			Job:       uj.id,
			Name:      uj.job.Name(),
			Status:    status,
			Submitted: uj.submitted,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Submitted.Equal(out[j].Submitted) {
			return out[i].Submitted.After(out[j].Submitted)
		}
		return out[i].Job > out[j].Job
	})
	return out, nil
}

// Control aborts, holds, or resumes a job (the ControlService semantics).
func (n *NJS) Control(caller core.DN, asServer bool, id core.JobID, op ajo.ControlOp) error {
	uj, ok := n.job(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if err := n.auth(uj, caller, asServer); err != nil {
		return err
	}
	switch op {
	case ajo.OpAbort:
		return n.abortJob(uj)
	case ajo.OpHold:
		uj.mu.Lock()
		defer uj.mu.Unlock()
		if uj.root.Status.Terminal() {
			return fmt.Errorf("njs: job %s already %s", id, uj.root.Status)
		}
		uj.held = true
		n.recordControl(uj, ajo.OpHold)
		return nil
	case ajo.OpResume:
		uj.mu.Lock()
		defer uj.mu.Unlock()
		if !uj.held {
			return fmt.Errorf("njs: job %s is not held", id)
		}
		uj.held = false
		n.recordControl(uj, ajo.OpResume)
		n.dispatchLocked(uj)
		return nil
	}
	return fmt.Errorf("njs: unknown control op %q", op)
}

// abortJob cancels a job tree. All state transitions commit atomically under
// the job locks (ancestor→descendant); the best-effort peer aborts for
// remote sub-jobs are issued only after every lock is released, so there is
// no window in which a concurrent Poll or Control can observe a half-aborted
// job.
func (n *NJS) abortJob(uj *unicoreJob) error {
	var remotes []remoteRef
	uj.mu.Lock()
	err := n.abortLocked(uj, &remotes)
	uj.mu.Unlock()
	if peers := n.peerClient(); peers != nil {
		for _, ref := range remotes {
			_ = peers.Call(context.Background(), ref.usite, protocol.MsgControl,
				protocol.ControlRequest{Job: ref.job, Op: ajo.OpAbort}, nil)
		}
	}
	return err
}

// abortLocked cancels everything in flight and closes the job. Remote
// sub-job references are collected into remotes for the caller to abort
// after the locks are dropped.
func (n *NJS) abortLocked(uj *unicoreJob, remotes *[]remoteRef) error {
	if uj.root.Status.Terminal() {
		return fmt.Errorf("njs: job %s already %s", uj.id, uj.root.Status)
	}
	uj.aborted = true
	n.recordControl(uj, ajo.OpAbort)
	// Cancel batch jobs in flight (completion events arrive through the
	// clock, so Cancel cannot re-enter this job synchronously).
	for aid, bid := range uj.batch {
		_ = uj.vsite.RMS.Cancel(bid)
		n.regMu.Lock()
		delete(n.batchIndex, batchKey{uj.vsite.Name, bid})
		n.regMu.Unlock()
		delete(uj.batch, aid)
	}
	// Abort local children (descending the sub-job tree keeps lock order).
	for _, childID := range uj.children {
		child, ok := n.job(childID)
		if !ok {
			continue
		}
		child.mu.Lock()
		if !child.root.Status.Terminal() {
			_ = n.abortLocked(child, remotes)
		}
		child.mu.Unlock()
	}
	// Detach remote sub-jobs and stop their poll loops; the peer abort
	// calls happen outside the locks.
	for aid, ref := range uj.remote {
		if ref.timer != nil {
			ref.timer.Stop()
		}
		*remotes = append(*remotes, *ref)
		delete(uj.remote, aid)
	}
	// Every non-terminal action becomes ABORTED.
	for aid, o := range uj.outcomes {
		if o.Status.Terminal() {
			continue
		}
		o.Status = ajo.StatusAborted
		o.Reason = "aborted by user"
		o.Finished = n.clock.Now()
		uj.done[string(aid)] = true
		delete(uj.inflight, aid)
		n.recordActionDone(uj, aid, o)
	}
	n.finalizeIfDoneLocked(uj)
	return nil
}

// FetchFile serves a chunk of a job's Uspace file to a peer NJS (§5.6
// transfer). The gateway restricts it to server-role callers. A negative
// offset is an error; an offset at or past EOF returns the file's metadata
// (size and whole-file CRC) with no data, which is how readers detect the
// end of a chunked transfer. The read is ranged: serving a chunk copies
// only that chunk, not the whole file.
func (n *NJS) FetchFile(id core.JobID, file string, offset, limit int64) (protocol.TransferReply, error) {
	if offset < 0 {
		return protocol.TransferReply{}, fmt.Errorf("njs: negative offset %d reading %q of job %s", offset, file, id)
	}
	uj, ok := n.job(id)
	if !ok {
		return protocol.TransferReply{Found: false}, nil
	}
	data, size, crc, err := uj.vsite.Space.ReadJobFileRange(id, file, offset, limit)
	if err != nil {
		return protocol.TransferReply{Found: false}, nil
	}
	return protocol.TransferReply{
		Found: true,
		Data:  data,
		Size:  size,
		CRC:   crc,
	}, nil
}

// FetchFileOwned serves a chunk of a job's Uspace file to the job's owner —
// §5.6: "the current implementation sends data back to the workstation only
// on user request while the user is working with the JMC". Peer servers may
// also call it on the owner's behalf.
func (n *NJS) FetchFileOwned(caller core.DN, asServer bool, id core.JobID, file string, offset, limit int64) (protocol.TransferReply, error) {
	uj, ok := n.job(id)
	if !ok {
		return protocol.TransferReply{Found: false}, nil
	}
	if err := n.auth(uj, caller, asServer); err != nil {
		return protocol.TransferReply{}, err
	}
	return n.FetchFile(id, file, offset, limit)
}
