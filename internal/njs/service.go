package njs

import (
	"fmt"
	"hash/crc64"
	"sort"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/protocol"
)

// This file is the NJS's service surface: the operations behind the JMC's
// status/outcome/control requests and the peer-NJS transfer endpoint. The
// gateway authenticates callers and invokes these methods; asServer marks
// requests signed by a peer UNICORE server rather than by the owning user.

// authLocked checks that caller may operate on the job.
func (n *NJS) authLocked(uj *unicoreJob, caller core.DN, asServer bool) error {
	if asServer {
		return nil // peer servers act on behalf of the consigning site
	}
	if uj.owner != caller {
		return fmt.Errorf("%w: job %s belongs to %s", ErrNotAuthorized, uj.id, uj.owner)
	}
	return nil
}

// Poll returns the compact status summary of a job (JMC traffic lights).
func (n *NJS) Poll(caller core.DN, asServer bool, id core.JobID) (protocol.PollReply, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	uj, ok := n.jobs[id]
	if !ok {
		return protocol.PollReply{Found: false}, nil
	}
	if err := n.authLocked(uj, caller, asServer); err != nil {
		return protocol.PollReply{}, err
	}
	s := ajo.Summarise(uj.root)
	s.Job = string(id)
	s.Updated = n.clock.Now()
	return protocol.PollReply{Found: true, Summary: s}, nil
}

// Outcome returns a deep copy of the job's outcome tree.
func (n *NJS) Outcome(caller core.DN, asServer bool, id core.JobID) (*ajo.Outcome, bool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	uj, ok := n.jobs[id]
	if !ok {
		return nil, false, nil
	}
	if err := n.authLocked(uj, caller, asServer); err != nil {
		return nil, false, err
	}
	raw, err := ajo.MarshalOutcome(uj.root)
	if err != nil {
		return nil, false, err
	}
	cp, err := ajo.UnmarshalOutcome(raw)
	if err != nil {
		return nil, false, err
	}
	return cp, true, nil
}

// List returns the caller's jobs at this Usite, newest first.
func (n *NJS) List(caller core.DN) ([]protocol.JobInfo, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []protocol.JobInfo
	for id, uj := range n.jobs {
		if uj.owner != caller || uj.parent != nil {
			continue // children are reported inside their parents
		}
		out = append(out, protocol.JobInfo{
			Job:       id,
			Name:      uj.job.Name(),
			Status:    uj.root.Status,
			Submitted: uj.submitted,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Submitted.Equal(out[j].Submitted) {
			return out[i].Submitted.After(out[j].Submitted)
		}
		return out[i].Job > out[j].Job
	})
	return out, nil
}

// Control aborts, holds, or resumes a job (the ControlService semantics).
func (n *NJS) Control(caller core.DN, asServer bool, id core.JobID, op ajo.ControlOp) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	uj, ok := n.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if err := n.authLocked(uj, caller, asServer); err != nil {
		return err
	}
	switch op {
	case ajo.OpAbort:
		return n.abortLocked(uj)
	case ajo.OpHold:
		if uj.root.Status.Terminal() {
			return fmt.Errorf("njs: job %s already %s", id, uj.root.Status)
		}
		uj.held = true
		return nil
	case ajo.OpResume:
		if !uj.held {
			return fmt.Errorf("njs: job %s is not held", id)
		}
		uj.held = false
		n.dispatchLocked(uj)
		return nil
	}
	return fmt.Errorf("njs: unknown control op %q", op)
}

// abortLocked cancels everything in flight and closes the job.
func (n *NJS) abortLocked(uj *unicoreJob) error {
	if uj.root.Status.Terminal() {
		return fmt.Errorf("njs: job %s already %s", uj.id, uj.root.Status)
	}
	uj.aborted = true
	// Cancel batch jobs in flight.
	for aid, bid := range uj.batch {
		_ = uj.vsite.RMS.Cancel(bid)
		delete(uj.batch, aid)
	}
	// Abort local children.
	for _, childID := range uj.children {
		if child, ok := n.jobs[childID]; ok && !child.root.Status.Terminal() {
			_ = n.abortLocked(child)
		}
	}
	// Abort remote sub-jobs (best effort) and stop their poll loops.
	for aid, ref := range uj.remote {
		if ref.timer != nil {
			ref.timer.Stop()
		}
		if n.peers != nil {
			remote := *ref
			n.mu.Unlock()
			_ = n.peers.Call(remote.usite, protocol.MsgControl,
				protocol.ControlRequest{Job: remote.job, Op: ajo.OpAbort}, nil)
			n.mu.Lock()
		}
		delete(uj.remote, aid)
	}
	// Every non-terminal action becomes ABORTED.
	for aid, o := range uj.outcomes {
		if o.Status.Terminal() {
			continue
		}
		o.Status = ajo.StatusAborted
		o.Reason = "aborted by user"
		o.Finished = n.clock.Now()
		uj.done[string(aid)] = true
		delete(uj.inflight, aid)
	}
	n.finalizeIfDoneLocked(uj)
	return nil
}

// FetchFile serves a chunk of a job's Uspace file to a peer NJS (§5.6
// transfer). The gateway restricts it to server-role callers.
func (n *NJS) FetchFile(id core.JobID, file string, offset, limit int64) (protocol.TransferReply, error) {
	n.mu.Lock()
	uj, ok := n.jobs[id]
	n.mu.Unlock()
	if !ok {
		return protocol.TransferReply{Found: false}, nil
	}
	data, err := uj.vsite.Space.ReadJobFile(id, file)
	if err != nil {
		return protocol.TransferReply{Found: false}, nil
	}
	size := int64(len(data))
	crc := crc64.Checksum(data, crcTable)
	if offset < 0 || offset > size {
		return protocol.TransferReply{Found: true, Size: size, CRC: crc}, nil
	}
	end := size
	if limit > 0 && offset+limit < size {
		end = offset + limit
	}
	return protocol.TransferReply{
		Found: true,
		Data:  data[offset:end],
		Size:  size,
		CRC:   crc,
	}, nil
}

// FetchFileOwned serves a chunk of a job's Uspace file to the job's owner —
// §5.6: "the current implementation sends data back to the workstation only
// on user request while the user is working with the JMC". Peer servers may
// also call it on the owner's behalf.
func (n *NJS) FetchFileOwned(caller core.DN, asServer bool, id core.JobID, file string, offset, limit int64) (protocol.TransferReply, error) {
	n.mu.Lock()
	uj, ok := n.jobs[id]
	if !ok {
		n.mu.Unlock()
		return protocol.TransferReply{Found: false}, nil
	}
	if err := n.authLocked(uj, caller, asServer); err != nil {
		n.mu.Unlock()
		return protocol.TransferReply{}, err
	}
	n.mu.Unlock()
	return n.FetchFile(id, file, offset, limit)
}
