// Package machine describes the destination systems of the batch tier. The
// 1999 UNICORE deployment covered "Cray T3E, Fujitsu VPP/700, IBM SP-2, and
// NEC SX-4" (paper §5.7); each profile records the architecture, batch
// dialect, size, per-PE performance, and toolchain commands, and provides
// the simulated compiler/linker tools that stand in for the real vendor
// toolchains (see DESIGN.md substitution table).
package machine

import (
	"fmt"
	"strings"
	"time"

	"unicore/internal/resources"
	"unicore/internal/shell"
)

// Dialect names the batch subsystem a machine runs.
type Dialect string

const (
	// DialectNQE is Cray's Network Queuing Environment (T3E).
	DialectNQE Dialect = "NQE"
	// DialectNQS is the Network Queueing System (Fujitsu VPP, NEC SX).
	DialectNQS Dialect = "NQS"
	// DialectLoadLeveler is IBM LoadLeveler (SP-2).
	DialectLoadLeveler Dialect = "LoadLeveler"
	// DialectCodine is the Codine RMS (workstation clusters), the system
	// UNICORE itself embeds (§5.1).
	DialectCodine Dialect = "CODINE"
)

// Profile describes one execution system (one Vsite's hardware).
type Profile struct {
	Name          string  // marketing name, e.g. "Cray T3E"
	Architecture  string  // resource page architecture string
	OS            string  // operating system
	Dialect       Dialect // batch subsystem
	Processors    int     // total PEs / nodes
	MemoryMBPerPE int
	MFlopsPerPE   int // peak per PE
	// SpeedFactor scales simulated compute: wall time = cpu / SpeedFactor.
	SpeedFactor float64

	// Toolchain command names (what the translation table maps "f90"/"ld"
	// to on this system).
	FortranCompiler string
	Linker          string
}

// CrayT3E returns the FZ Jülich T3E profile (512 PEs in the 1999 system).
func CrayT3E(pes int) Profile {
	return Profile{
		Name:            "Cray T3E",
		Architecture:    "Cray T3E",
		OS:              "UNICOS/mk",
		Dialect:         DialectNQE,
		Processors:      pes,
		MemoryMBPerPE:   128,
		MFlopsPerPE:     600,
		SpeedFactor:     1.0,
		FortranCompiler: "cf90",
		Linker:          "segldr",
	}
}

// FujitsuVPP700 returns the vector-parallel VPP700 profile.
func FujitsuVPP700(pes int) Profile {
	return Profile{
		Name:            "Fujitsu VPP700",
		Architecture:    "Fujitsu VPP700",
		OS:              "UXP/V",
		Dialect:         DialectNQS,
		Processors:      pes,
		MemoryMBPerPE:   2048,
		MFlopsPerPE:     2200,
		SpeedFactor:     2.2,
		FortranCompiler: "frt",
		Linker:          "frt-ld",
	}
}

// IBMSP2 returns the SP-2 profile.
func IBMSP2(nodes int) Profile {
	return Profile{
		Name:            "IBM SP-2",
		Architecture:    "IBM SP-2",
		OS:              "AIX",
		Dialect:         DialectLoadLeveler,
		Processors:      nodes,
		MemoryMBPerPE:   512,
		MFlopsPerPE:     266,
		SpeedFactor:     0.5,
		FortranCompiler: "xlf90",
		Linker:          "xlf-ld",
	}
}

// NECSX4 returns the SX-4 vector profile.
func NECSX4(cpus int) Profile {
	return Profile{
		Name:            "NEC SX-4",
		Architecture:    "NEC SX-4",
		OS:              "SUPER-UX",
		Dialect:         DialectNQS,
		Processors:      cpus,
		MemoryMBPerPE:   4096,
		MFlopsPerPE:     2000,
		SpeedFactor:     2.0,
		FortranCompiler: "f90sx",
		Linker:          "sxld",
	}
}

// GenericCluster returns a commodity cluster running Codine directly.
func GenericCluster(nodes int) Profile {
	return Profile{
		Name:            "Linux Cluster",
		Architecture:    "x86 Cluster",
		OS:              "Linux",
		Dialect:         DialectCodine,
		Processors:      nodes,
		MemoryMBPerPE:   256,
		MFlopsPerPE:     200,
		SpeedFactor:     0.4,
		FortranCompiler: "g77",
		Linker:          "ld",
	}
}

// Profiles returns the full §5.7 machine inventory keyed by constructor.
func Profiles() []Profile {
	return []Profile{CrayT3E(512), FujitsuVPP700(52), IBMSP2(76), NECSX4(16), GenericCluster(32)}
}

// ResourcePage derives a default resource page for a profile (the site
// administrator would curate this through the resource page editor, §5.4).
func (p Profile) ResourcePage() resources.Page {
	return resources.Page{
		Architecture: p.Architecture,
		OpSys:        p.OS,
		PerfMFlops:   p.MFlopsPerPE,
		Processors:   resources.Range{Min: 1, Max: p.Processors, Default: min(8, p.Processors)},
		RunTimeSec:   resources.Range{Min: 10, Max: 24 * 3600, Default: 3600},
		MemoryMB:     resources.Range{Min: 1, Max: p.MemoryMBPerPE, Default: min(128, p.MemoryMBPerPE)},
		PermDiskMB:   resources.Range{Min: 0, Max: 20480, Default: 100},
		TempDiskMB:   resources.Range{Min: 0, Max: 40960, Default: 1024},
		Software: []resources.Software{
			{Kind: resources.KindCompiler, Name: "f90", Version: "1.0", Path: "/opt/bin/" + p.FortranCompiler},
			{Kind: resources.KindLibrary, Name: "MPI", Version: "1.2", Path: "/usr/lib/mpi"},
			{Kind: resources.KindLibrary, Name: "BLAS", Version: "3", Path: "/usr/lib/blas"},
		},
	}
}

// --- Simulated toolchain ---

// objHeader marks a simulated object file; the compiler records provenance
// after it.
const objHeader = "#unicore-obj"

// simDirective is the marker inside Fortran sources whose payload the
// simulated compiler carries into the object file. A source line
// "!SIM: cpu 30s" compiles to the runtime command "cpu 30s".
const simDirective = "!SIM:"

// syntaxErrorMarker lets tests provoke compile failures.
const syntaxErrorMarker = "!SYNTAX-ERROR"

// Tools returns the shell tools for this machine: the Fortran compiler and
// the linker, registered under the profile's command names.
func (p Profile) Tools() map[string]shell.Tool {
	return map[string]shell.Tool{
		p.FortranCompiler: compilerTool(p),
		p.Linker:          linkerTool(p),
	}
}

// compilerTool builds the simulated F90 compiler:
//
//	cf90 -c -o main.o main.f90 [more.f90...] [-O...]
//
// It extracts !SIM: directives from each source into the object file and
// charges compile CPU time proportional to source size.
func compilerTool(p Profile) shell.Tool {
	return func(ctx *shell.Ctx, args []string) int {
		var output string
		var sources []string
		for i := 0; i < len(args); i++ {
			switch {
			case args[i] == "-o" && i+1 < len(args):
				output = args[i+1]
				i++
			case strings.HasPrefix(args[i], "-"):
				// optimisation flags etc. — accepted, ignored
			default:
				sources = append(sources, args[i])
			}
		}
		if output == "" || len(sources) == 0 {
			fmt.Fprintf(&ctx.Stderr, "%s: usage: %s -c -o OUT SRC...\n", p.FortranCompiler, p.FortranCompiler)
			return 2
		}
		var body strings.Builder
		fmt.Fprintf(&body, "%s %s lang=f90\n", objHeader, p.FortranCompiler)
		for _, src := range sources {
			data, err := ctx.FS.ReadFile(ctx.Abs(src))
			if err != nil {
				fmt.Fprintf(&ctx.Stderr, "%s: %s: no such source file\n", p.FortranCompiler, src)
				return 1
			}
			text := string(data)
			if strings.Contains(text, syntaxErrorMarker) {
				fmt.Fprintf(&ctx.Stderr, "%s: %s: syntax error\n", p.FortranCompiler, src)
				return 1
			}
			for _, line := range strings.Split(text, "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, simDirective); ok {
					body.WriteString(strings.TrimSpace(rest))
					body.WriteByte('\n')
				}
			}
			// Compiling costs ~1ms of CPU per source byte on the reference
			// machine, scaled by machine speed elsewhere.
			ctx.CPUTime += compileCost(len(data))
		}
		if err := ctx.FS.WriteFile(ctx.Abs(output), []byte(body.String())); err != nil {
			fmt.Fprintf(&ctx.Stderr, "%s: writing %s: %v\n", p.FortranCompiler, output, err)
			return 1
		}
		fmt.Fprintf(&ctx.Stdout, "%s: compiled %d source(s) -> %s\n", p.FortranCompiler, len(sources), output)
		return 0
	}
}

// linkerTool builds the simulated linker:
//
//	segldr -o a.out main.o [more.o...] [-l MPI...]
//
// It concatenates the directives of all objects into a runnable
// unicore-sim executable.
func linkerTool(p Profile) shell.Tool {
	return func(ctx *shell.Ctx, args []string) int {
		var output string
		var objects, libs []string
		for i := 0; i < len(args); i++ {
			switch {
			case args[i] == "-o" && i+1 < len(args):
				output = args[i+1]
				i++
			case args[i] == "-l" && i+1 < len(args):
				libs = append(libs, args[i+1])
				i++
			case strings.HasPrefix(args[i], "-l"):
				libs = append(libs, args[i][2:])
			default:
				objects = append(objects, args[i])
			}
		}
		if output == "" || len(objects) == 0 {
			fmt.Fprintf(&ctx.Stderr, "%s: usage: %s -o OUT OBJ... [-l LIB]\n", p.Linker, p.Linker)
			return 2
		}
		var body strings.Builder
		body.WriteString(shell.SimBinaryHeader + "\n")
		for _, lib := range libs {
			fmt.Fprintf(&body, "# linked library %s\n", lib)
		}
		for _, obj := range objects {
			data, err := ctx.FS.ReadFile(ctx.Abs(obj))
			if err != nil {
				fmt.Fprintf(&ctx.Stderr, "%s: %s: no such object\n", p.Linker, obj)
				return 1
			}
			text := string(data)
			if !strings.HasPrefix(text, objHeader) {
				fmt.Fprintf(&ctx.Stderr, "%s: %s: not an object file\n", p.Linker, obj)
				return 1
			}
			// Skip the provenance line; keep the directives.
			if _, rest, ok := strings.Cut(text, "\n"); ok {
				body.WriteString(rest)
			}
		}
		if err := ctx.FS.WriteFile(ctx.Abs(output), []byte(body.String())); err != nil {
			fmt.Fprintf(&ctx.Stderr, "%s: writing %s: %v\n", p.Linker, output, err)
			return 1
		}
		fmt.Fprintf(&ctx.Stdout, "%s: linked %d object(s) -> %s\n", p.Linker, len(objects), output)
		return 0
	}
}

// compileCost models compile time growth with source size: one millisecond
// of CPU per source byte.
func compileCost(srcBytes int) time.Duration {
	return time.Duration(srcBytes) * time.Millisecond
}
