package machine

import (
	"strings"
	"testing"

	"unicore/internal/shell"
	"unicore/internal/sim"
	"unicore/internal/vfs"
)

func newCtx(t *testing.T, p Profile) *shell.Ctx {
	t.Helper()
	fs := vfs.New(sim.NewVirtualClock())
	if err := fs.MkdirAll("/job"); err != nil {
		t.Fatal(err)
	}
	return &shell.Ctx{FS: fs, Cwd: "/job", Tools: p.Tools()}
}

func TestProfilesInventory(t *testing.T) {
	ps := Profiles()
	if len(ps) != 5 {
		t.Fatalf("%d profiles, want 5", len(ps))
	}
	names := map[string]Dialect{}
	for _, p := range ps {
		names[p.Name] = p.Dialect
		if p.Processors <= 0 || p.SpeedFactor <= 0 || p.FortranCompiler == "" || p.Linker == "" {
			t.Errorf("%s: incomplete profile %+v", p.Name, p)
		}
	}
	// The paper's §5.7 systems with their historical batch subsystems.
	want := map[string]Dialect{
		"Cray T3E":       DialectNQE,
		"Fujitsu VPP700": DialectNQS,
		"IBM SP-2":       DialectLoadLeveler,
		"NEC SX-4":       DialectNQS,
		"Linux Cluster":  DialectCodine,
	}
	for name, d := range want {
		if names[name] != d {
			t.Errorf("%s: dialect %s, want %s", name, names[name], d)
		}
	}
}

func TestResourcePageDerivation(t *testing.T) {
	p := CrayT3E(512)
	page := p.ResourcePage()
	if page.Processors.Max != 512 || page.Architecture != "Cray T3E" {
		t.Fatalf("page = %+v", page)
	}
	if !page.HasSoftware("compiler", "f90", "") {
		t.Fatal("page missing f90 compiler")
	}
	if err := page.Check(page.Defaults()); err != nil {
		t.Fatalf("page defaults do not satisfy the page: %v", err)
	}
}

const sampleSource = `      PROGRAM MAIN
!SIM: cpu 30s
!SIM: write result.dat 256
!SIM: echo computation finished
      END
`

func TestCompileLinkExecuteFlow(t *testing.T) {
	p := CrayT3E(64)
	ctx := newCtx(t, p)
	if err := ctx.FS.WriteFile("/job/main.f90", []byte(sampleSource)); err != nil {
		t.Fatal(err)
	}
	script := strings.Join([]string{
		"cf90 -c -o main.o main.f90",
		"segldr -o a.out main.o -l MPI",
		"./a.out",
	}, "\n")
	res := shell.Run(ctx, script)
	if res.ExitCode != 0 {
		t.Fatalf("exit=%d stderr=%s", res.ExitCode, res.Stderr)
	}
	if !strings.Contains(res.Stdout, "computation finished") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	info, err := ctx.FS.Stat("/job/result.dat")
	if err != nil || info.Size != 256 {
		t.Fatalf("result.dat = %+v, %v", info, err)
	}
	// CPU time includes the 30s of the program plus compile cost.
	if res.CPUTime < 30e9 {
		t.Fatalf("CPUTime = %v, want >= 30s", res.CPUTime)
	}
}

func TestEachProfileToolchainWorks(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			ctx := newCtx(t, p)
			_ = ctx.FS.WriteFile("/job/m.f90", []byte("!SIM: echo ok\n"))
			script := p.FortranCompiler + " -c -o m.o m.f90\n" +
				p.Linker + " -o prog m.o\n./prog\n"
			res := shell.Run(ctx, script)
			if res.ExitCode != 0 {
				t.Fatalf("exit=%d stderr=%s", res.ExitCode, res.Stderr)
			}
			if !strings.Contains(res.Stdout, "ok") {
				t.Fatalf("stdout=%q", res.Stdout)
			}
		})
	}
}

func TestCompilerMissingSource(t *testing.T) {
	p := CrayT3E(4)
	ctx := newCtx(t, p)
	res := shell.Run(ctx, "cf90 -c -o m.o missing.f90")
	if res.ExitCode != 1 || !strings.Contains(res.Stderr, "no such source") {
		t.Fatalf("exit=%d stderr=%q", res.ExitCode, res.Stderr)
	}
}

func TestCompilerSyntaxError(t *testing.T) {
	p := CrayT3E(4)
	ctx := newCtx(t, p)
	_ = ctx.FS.WriteFile("/job/bad.f90", []byte("!SYNTAX-ERROR\n"))
	res := shell.Run(ctx, "cf90 -c -o m.o bad.f90")
	if res.ExitCode != 1 || !strings.Contains(res.Stderr, "syntax error") {
		t.Fatalf("exit=%d stderr=%q", res.ExitCode, res.Stderr)
	}
	if ctx.FS.Exists("/job/m.o") {
		t.Fatal("object produced despite syntax error")
	}
}

func TestCompilerUsageError(t *testing.T) {
	p := CrayT3E(4)
	ctx := newCtx(t, p)
	if res := shell.Run(ctx, "cf90 -c main.f90"); res.ExitCode != 2 {
		t.Fatalf("missing -o: exit=%d", res.ExitCode)
	}
}

func TestLinkerRejectsNonObject(t *testing.T) {
	p := IBMSP2(8)
	ctx := newCtx(t, p)
	_ = ctx.FS.WriteFile("/job/junk.o", []byte("plain text"))
	res := shell.Run(ctx, "xlf-ld -o a.out junk.o")
	if res.ExitCode != 1 || !strings.Contains(res.Stderr, "not an object") {
		t.Fatalf("exit=%d stderr=%q", res.ExitCode, res.Stderr)
	}
}

func TestLinkerMissingObject(t *testing.T) {
	p := IBMSP2(8)
	ctx := newCtx(t, p)
	res := shell.Run(ctx, "xlf-ld -o a.out ghost.o")
	if res.ExitCode != 1 {
		t.Fatalf("exit=%d", res.ExitCode)
	}
}

func TestMultiObjectLink(t *testing.T) {
	p := NECSX4(4)
	ctx := newCtx(t, p)
	_ = ctx.FS.WriteFile("/job/a.f90", []byte("!SIM: echo from-a\n"))
	_ = ctx.FS.WriteFile("/job/b.f90", []byte("!SIM: echo from-b\n"))
	script := `
f90sx -c -o a.o a.f90
f90sx -c -o b.o b.f90
sxld -o prog a.o b.o
./prog
`
	res := shell.Run(ctx, script)
	if res.ExitCode != 0 {
		t.Fatalf("exit=%d stderr=%s", res.ExitCode, res.Stderr)
	}
	if !strings.Contains(res.Stdout, "from-a") || !strings.Contains(res.Stdout, "from-b") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}
