// Package fixture exercises the ctxpropagate analyzer: no fresh
// Background/TODO contexts where a caller ctx is already in scope.
package fixture

import "context"

func use(ctx context.Context) {}

// BadDetach throws away the caller's cancellation.
func BadDetach(ctx context.Context, name string) {
	use(context.Background()) // want "caller's context is in scope"
	_ = name
}

// BadTODOInClosure loses the ctx inside a closure — it is still in scope
// there.
func BadTODOInClosure(ctx context.Context) func() {
	return func() {
		use(context.TODO()) // want "caller's context is in scope"
	}
}

// BadRelayDetach mimics a federation relay that drops the caller's ctx:
// the origin's client abort would no longer cancel the peer-gateway call.
func BadRelayDetach(ctx context.Context, forward func(context.Context) error) error {
	return forward(context.Background()) // want "caller's context is in scope"
}

// GoodPropagate threads the caller ctx through.
func GoodPropagate(ctx context.Context) {
	use(ctx)
}

// GoodRootWrapper has no caller ctx — the documented Call/Handle wrapper
// shape.
func GoodRootWrapper(name string) {
	use(context.Background())
	_ = name
}

// GoodShadowingLiteral declares its own ctx parameter; minting one in the
// enclosing scope-free function stays allowed.
func GoodShadowingLiteral() func(context.Context) {
	use(context.Background())
	return func(ctx context.Context) { use(ctx) }
}

// SuppressedDetach is a reviewed detach (fire-and-forget audit write).
func SuppressedDetach(ctx context.Context) {
	//lint:allow ctxpropagate fixture: audit write must survive request cancellation
	use(context.Background())
}
