package ctxpropagate_test

import (
	"testing"

	"unicore/internal/analysis/analysistest"
	"unicore/internal/analysis/ctxpropagate"
)

func TestCtxPropagate(t *testing.T) {
	analysistest.Run(t, ctxpropagate.Analyzer, "testdata/src/ctxpropagate")
}
