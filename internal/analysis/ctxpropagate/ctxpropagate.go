// Package ctxpropagate enforces context threading in the request-path tiers
// (internal/client, internal/gateway, internal/pool,
// internal/federation): a function that was
// handed a context.Context must not mint a fresh context.Background() or
// context.TODO() — doing so detaches the work from the caller's
// cancellation and deadline, which is how a client abort stops long-polls
// and staged transfers (PR 4/5).
//
// Function literals inherit the judgment of their enclosing function: a
// closure inside a ctx-carrying function still has the caller's ctx in
// scope. Root-level functions with no ctx parameter (the documented
// non-context wrappers like Client.Call and Gateway.Handle) are exempt.
package ctxpropagate

import (
	"go/ast"

	"unicore/internal/analysis"
)

// Analyzer flags context.Background()/TODO() where a caller context is in
// scope.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpropagate",
	Doc:  "report context.Background/TODO calls in functions that already have a caller context in scope",
	Scope: []string{
		"unicore/internal/client",
		"unicore/internal/federation",
		"unicore/internal/gateway",
		"unicore/internal/pool",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			check(pass, fd.Body, hasCtxParam(pass, fd.Type))
		}
	}
	return nil
}

// check walks a function body; inScope says whether a caller ctx is visible.
func check(pass *analysis.Pass, body *ast.BlockStmt, inScope bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			check(pass, n.Body, inScope || hasCtxParam(pass, n.Type))
			return false
		case *ast.CallExpr:
			if !inScope {
				return true
			}
			for _, name := range []string{"Background", "TODO"} {
				if analysis.IsPkgFunc(pass.TypesInfo, n, "context", name) {
					pass.Reportf(n.Pos(),
						"context.%s() where the caller's context is in scope; propagate the ctx parameter instead", name)
				}
			}
		}
		return true
	})
}

// hasCtxParam reports whether the signature declares a context.Context
// parameter.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, p := range ft.Params.List {
		if analysis.IsNamed(pass.TypesInfo.TypeOf(p.Type), "context", "Context") {
			return true
		}
	}
	return false
}
