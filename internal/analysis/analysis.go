// Package analysis is a self-contained skeleton of the go/analysis model,
// built only on the standard library (go/ast, go/types and the source
// importer). The repository's invariant checkers — the durable-ack,
// lock-order, version-gating, context-propagation and error-sink analyzers
// under internal/analysis/... — plug into it, and tools/unilint drives it
// over package patterns. The vendored golang.org/x/tools module is not a
// dependency of this repository, so the subset of the go/analysis API the
// checkers need (Analyzer, Pass, diagnostics, fixture tests) is reimplemented
// here; the shapes mirror the upstream package so the analyzers could be
// ported to it mechanically.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker: a name (used in diagnostics and
// //lint:allow directives), user-facing documentation, an optional import
// path scope, and the function that inspects one package.
type Analyzer struct {
	// Name identifies the analyzer in output and suppression directives.
	// It must be a single lower-case word.
	Name string
	// Doc is the one-paragraph description printed by unilint -help.
	Doc string
	// Scope restricts the analyzer to packages whose import path starts
	// with one of these prefixes. Empty means every package. The driver
	// applies Scope only to packages inside this module, so analysistest
	// fixtures (whose synthetic import paths match no prefix) still run.
	Scope []string
	// Run inspects one loaded package and reports findings through the
	// pass. A non-nil error aborts the whole unilint run (reserved for
	// internal failures, not findings).
	Run func(*Pass) error
}

// InScope reports whether the analyzer applies to the given import path.
// Paths outside this module (fixtures, scratch packages) are always in scope.
func (a *Analyzer) InScope(importPath string) bool {
	if len(a.Scope) == 0 || !strings.HasPrefix(importPath, "unicore/") {
		return true
	}
	for _, p := range a.Scope {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one type-checked package, mirroring
// go/analysis.Pass.
type Pass struct {
	// Analyzer is the checker this pass runs.
	Analyzer *Analyzer
	// Fset maps token positions for every file in the pass.
	Fset *token.FileSet
	// Files holds the parsed syntax trees of the package (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker facts for Files.
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	// Pos is the resolved source position of the finding.
	Pos token.Position
	// Analyzer names the checker that produced the finding ("unilint" for
	// malformed suppression directives).
	Analyzer string
	// Message is the human-readable description.
	Message string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// RunAnalyzer applies a single analyzer to a loaded package and returns its
// raw diagnostics; //lint:allow suppression is not applied here (see Filter).
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Pkg,
		TypesInfo: pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Pkg.Path(), err)
	}
	return pass.diags, nil
}

// Run applies every in-scope analyzer to the package, filters the results
// through the package's //lint:allow directives, and returns the surviving
// diagnostics sorted by position. The directive validator accepts exactly the
// names of the analyzers passed in.
func Run(analyzers []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		if !a.InScope(pkg.Pkg.Path()) {
			continue
		}
		ds, err := RunAnalyzer(a, pkg)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	diags = Filter(diags, Directives(pkg.Fset, pkg.Files), known)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// Deref unwraps pointer types.
func Deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// Named returns the named type behind t (unwrapping pointers and aliases in
// any nesting order, so a pointer-to-alias like *unicore.JournalStore
// resolves to journal.Store), or nil if t is not a named type.
func Named(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t (behind pointers/aliases) is the named type
// path.name.
func IsNamed(t types.Type, path, name string) bool {
	n := Named(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == path && n.Obj().Name() == name
}

// NamedIn reports whether t (behind pointers/aliases) is any named type
// declared in the package with the given import path.
func NamedIn(t types.Type, path string) bool {
	n := Named(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == path
}

// Receiver returns the static type of the receiver expression of a method
// call (the x in x.M(...)), or nil when call is not a method call.
func Receiver(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok {
		return s.Recv()
	}
	return nil
}

// IsMethodCall reports whether call invokes one of the named methods on a
// value whose pointer-stripped type is path.typeName.
func IsMethodCall(info *types.Info, call *ast.CallExpr, path, typeName string, methods ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := Receiver(info, call)
	if recv == nil || !IsNamed(recv, path, typeName) {
		return false
	}
	for _, m := range methods {
		if sel.Sel.Name == m {
			return true
		}
	}
	return false
}

// CalleeFunc returns the declared function or method object a call resolves
// to, or nil for calls through function values, conversions and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// IsPkgFunc reports whether call invokes the package-level function
// path.name.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, path, name string) bool {
	f := CalleeFunc(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == path && f.Name() == name
}

// CalleeName returns the syntactic name of the called function or method
// ("Append" for sp.Append(...), "admit" for admit(...)); empty for indirect
// calls through non-selector expressions.
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
