package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Suppression directives. A finding can be silenced in place with
//
//	//lint:allow <analyzer> <reason>
//
// either trailing the offending line or on a line of its own immediately
// above it. The reason is mandatory: a directive without one is itself
// reported (by the pseudo-analyzer "unilint") and cannot be suppressed, so
// every silenced finding carries a reviewable justification in the source.

// Directive is one parsed //lint:allow comment.
type Directive struct {
	// Analyzer is the checker the directive silences.
	Analyzer string
	// Reason is the mandatory justification (everything after the analyzer
	// name).
	Reason string
	// Pos locates the directive comment.
	Pos token.Position
	// Malformed is set when the directive is missing its analyzer name or
	// reason.
	Malformed bool
}

const directivePrefix = "//lint:allow"

// Directives extracts every //lint:allow directive from the files.
func Directives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowed — not ours
				}
				fields := strings.Fields(rest)
				d := Directive{Pos: fset.Position(c.Pos())}
				if len(fields) < 2 {
					d.Malformed = true
					if len(fields) == 1 {
						d.Analyzer = fields[0]
					}
				} else {
					d.Analyzer = fields[0]
					d.Reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// Filter drops diagnostics covered by a well-formed //lint:allow directive
// and appends one diagnostic per malformed or unknown-analyzer directive.
// A directive at line L covers findings of its analyzer at lines L and L+1
// of the same file, which serves both the trailing-comment and
// line-above placements. known holds the acceptable analyzer names.
func Filter(diags []Diagnostic, directives []Directive, known map[string]bool) []Diagnostic {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	covered := make(map[key]bool)
	var kept []Diagnostic
	for _, d := range directives {
		switch {
		case d.Malformed:
			kept = append(kept, Diagnostic{
				Pos:      d.Pos,
				Analyzer: "unilint",
				Message:  "malformed //lint:allow directive: want //lint:allow <analyzer> <reason>",
			})
		case !known[d.Analyzer]:
			kept = append(kept, Diagnostic{
				Pos:      d.Pos,
				Analyzer: "unilint",
				Message:  "unknown analyzer " + strconv.Quote(d.Analyzer) + " in //lint:allow directive",
			})
		default:
			covered[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] = true
			covered[key{d.Pos.Filename, d.Pos.Line + 1, d.Analyzer}] = true
		}
	}
	for _, d := range diags {
		if covered[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
