package durableack_test

import (
	"testing"

	"unicore/internal/analysis/analysistest"
	"unicore/internal/analysis/durableack"
)

func TestDurableAck(t *testing.T) {
	analysistest.Run(t, durableack.Analyzer, "testdata/src/durableack")
}
