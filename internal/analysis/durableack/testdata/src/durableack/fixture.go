// Package fixture exercises the durableack analyzer: acks returned after a
// journal mutation must be preceded by a sync. The bad cases model exactly
// the regression the analyzer exists to catch — deleting the SyncJournal
// call before a consign or staging ack.
package fixture

import (
	"errors"

	"unicore/internal/core"
	"unicore/internal/journal"
	"unicore/internal/protocol"
	"unicore/internal/staging"
)

// Srv models an NJS-like service owning a journal store and a spool.
type Srv struct {
	store *journal.Store
	spool *staging.Spool
}

// SyncJournal models the njs group-commit sync.
func (s *Srv) SyncJournal() error { return s.store.Sync() }

// stageAck models the staging ack barrier.
func (s *Srv) stageAck() error { return s.store.Sync() }

func (s *Srv) admit() (core.JobID, error) { return "j1", nil }

// BadConsign is Consign with the SyncJournal deleted: the ack races the
// fsync.
func (s *Srv) BadConsign(e journal.Entry) (core.JobID, error) {
	id, err := s.admit()
	if err != nil {
		return "", err
	}
	s.store.Append(e)
	return id, nil // want "ack returned after unsynced journal mutation"
}

// GoodConsign syncs between the append and the ack.
func (s *Srv) GoodConsign(e journal.Entry) (core.JobID, error) {
	id, err := s.admit()
	if err != nil {
		return "", err
	}
	s.store.Append(e)
	if err := s.SyncJournal(); err != nil {
		return "", err
	}
	return id, nil
}

// BadStageCommit acks a spool commit without the stageAck barrier.
func (s *Srv) BadStageCommit(owner core.DN, handle string, crc uint64) (protocol.PutCommitReply, error) {
	info, err := s.spool.Commit(owner, handle, crc)
	if err != nil {
		return protocol.PutCommitReply{}, err
	}
	return protocol.PutCommitReply{Size: info.Size}, nil // want "unsynced journal mutation \"Commit\""
}

// GoodStageCommit runs the barrier before acknowledging; the early return on
// the error path is exempt because it is dominated by an err != nil guard.
func (s *Srv) GoodStageCommit(owner core.DN, handle string, crc uint64) (protocol.PutCommitReply, error) {
	info, err := s.spool.Commit(owner, handle, crc)
	if err != nil {
		return protocol.PutCommitReply{}, err
	}
	if err := s.stageAck(); err != nil {
		return protocol.PutCommitReply{}, err
	}
	return protocol.PutCommitReply{Size: info.Size, CRC: info.CRC, Chunks: info.Chunks}, nil
}

// SuppressedConsign documents a reviewed exception: the directive carries a
// mandatory reason and silences the finding on the next line.
func (s *Srv) SuppressedConsign(e journal.Entry) (core.JobID, error) {
	s.store.Append(e)
	//lint:allow durableack fixture: ack durability handled by the caller
	return "j2", nil
}

// NotAnAck mutates the journal but returns no ack type, so it is out of
// scope regardless of sync placement.
func (s *Srv) NotAnAck(e journal.Entry) error {
	s.store.Append(e)
	return errors.New("no ack here")
}
