// Package durableack enforces the durable-ack contract of the NJS (PR 2):
// once a request has mutated journaled state — an incarnation append, a
// spool open/chunk/commit, any record* helper — the function must not return
// a protocol acknowledgment (a protocol.*Reply value or a core.JobID) until
// the journal has been synced (SyncJournal, stageAck, or journal.Store.Sync).
// An ack that races the fsync is exactly the crash window the group-commit
// journal exists to close: the client believes the job is consigned while the
// record is still in the page cache.
//
// The check is a linear, source-order over-approximation per exported
// function: mutating calls set a dirty flag, sync calls clear it, and a
// return while dirty is flagged. Returns inside an `if err != nil`-style
// guard are exempt (error paths do not acknowledge), and calls inside defer
// statements or function literals are ignored (their execution order is not
// source order). Unprovable-but-correct sites carry
// //lint:allow durableack <reason>.
package durableack

import (
	"go/ast"
	"go/token"
	"strings"

	"unicore/internal/analysis"
)

// Analyzer flags ack-carrying returns reached after a journaled mutation
// with no intervening sync.
var Analyzer = &analysis.Analyzer{
	Name:  "durableack",
	Doc:   "report protocol acks returned after a journal mutation without an intervening SyncJournal/group-commit",
	Scope: []string{"unicore/internal/njs", "unicore/internal/staging"},
	Run:   run,
}

// Mutating and syncing call names matched by identifier when the receiver
// type is not statically resolvable (the njs record* family is unexported).
var (
	mutateNames = map[string]bool{
		"admit": true, "record": true, "recordAdmit": true,
		"recordActionStart": true, "recordActionDone": true,
		"recordControl": true, "recordRootDone": true,
		"recordInject": true, "recordRemote": true,
		"recordFile": true, "emitEvent": true,
	}
	syncNames = map[string]bool{"SyncJournal": true, "stageAck": true}
)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !returnsAck(pass, fd) {
				continue
			}
			s := &scanner{pass: pass}
			s.stmts(fd.Body.List, false)
		}
	}
	return nil
}

// returnsAck reports whether the function's results include a protocol reply
// struct or a job ID — the values a client reads as an acknowledgment.
func returnsAck(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if analysis.IsNamed(t, "unicore/internal/core", "JobID") {
			return true
		}
		if n := analysis.Named(t); n != nil && n.Obj().Pkg() != nil &&
			n.Obj().Pkg().Path() == "unicore/internal/protocol" &&
			strings.HasSuffix(n.Obj().Name(), "Reply") {
			return true
		}
	}
	return false
}

// scanner walks one function body in source order tracking whether a
// journaled mutation is still unsynced.
type scanner struct {
	pass      *analysis.Pass
	dirty     bool
	dirtyCall string
}

// stmts scans a statement list; errGuard marks statements dominated by an
// error check, whose returns are error paths rather than acks.
func (s *scanner) stmts(list []ast.Stmt, errGuard bool) {
	for _, st := range list {
		s.stmt(st, errGuard)
	}
}

func (s *scanner) stmt(st ast.Stmt, errGuard bool) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		s.stmts(st.List, errGuard)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init, errGuard)
		}
		s.exprCalls(st.Cond)
		s.stmt(st.Body, errGuard || isErrGuard(st.Cond))
		if st.Else != nil {
			s.stmt(st.Else, errGuard)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init, errGuard)
		}
		s.stmt(st.Body, errGuard)
	case *ast.RangeStmt:
		s.exprCalls(st.X)
		s.stmt(st.Body, errGuard)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, errGuard)
		}
		s.exprCalls(st.Tag)
		s.stmt(st.Body, errGuard)
	case *ast.TypeSwitchStmt:
		s.stmt(st.Body, errGuard)
	case *ast.SelectStmt:
		s.stmt(st.Body, errGuard)
	case *ast.CaseClause:
		s.stmts(st.Body, errGuard)
	case *ast.CommClause:
		s.stmts(st.Body, errGuard)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, errGuard)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.exprCalls(r)
		}
		if s.dirty && !errGuard {
			s.pass.Reportf(st.Pos(),
				"ack returned after unsynced journal mutation %q (durable-ack contract: call SyncJournal/stageAck before acknowledging)",
				s.dirtyCall)
		}
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred and concurrent calls do not run in source order; skip.
	default:
		s.nodeCalls(st)
	}
}

// exprCalls classifies every call in an expression, skipping function
// literals (their bodies run later, if at all).
func (s *scanner) exprCalls(e ast.Expr) {
	if e == nil {
		return
	}
	s.nodeCalls(e)
}

func (s *scanner) nodeCalls(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			s.classify(n)
		}
		return true
	})
}

// classify updates the dirty flag for one call.
func (s *scanner) classify(call *ast.CallExpr) {
	info := s.pass.TypesInfo
	name := analysis.CalleeName(call)
	switch {
	case syncNames[name],
		analysis.IsMethodCall(info, call, "unicore/internal/journal", "Store", "Sync"):
		s.dirty = false
	case mutateNames[name],
		analysis.IsMethodCall(info, call, "unicore/internal/journal", "Store", "Append"),
		analysis.IsMethodCall(info, call, "unicore/internal/staging", "Spool", "Open", "Chunk", "Commit"):
		s.dirty = true
		s.dirtyCall = name
	}
}

// isErrGuard recognizes the conventional error-path conditions: any `x !=
// nil` comparison (possibly under && / ||) or a negated ok (`!ok`).
func isErrGuard(cond ast.Expr) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.NEQ:
			return isNil(c.X) || isNil(c.Y)
		case token.LAND, token.LOR:
			return isErrGuard(c.X) || isErrGuard(c.Y)
		}
	case *ast.UnaryExpr:
		return c.Op == token.NOT
	}
	return false
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
