// Package errsink flags silently discarded errors from the durability
// surface: Close/Sync/Flush/Append calls that return an error, invoked as a
// bare statement or deferred, on journal and staging types or *os.File. A
// swallowed Close on a journal file is a swallowed fsync failure — the
// store believes a record durable that never reached the disk (PR 2).
//
// Only implicit discards are flagged. An explicit `_ = f.Close()` states
// that the error is intentionally dropped (fine on read-only paths) and is
// accepted, as is capturing the error into any variable.
package errsink

import (
	"go/ast"
	"go/types"

	"unicore/internal/analysis"
)

// Analyzer flags discarded errors from durability-relevant Close/Sync/
// Flush/Append calls.
var Analyzer = &analysis.Analyzer{
	Name: "errsink",
	Doc:  "report discarded errors from Close/Sync/Append/Flush on journal, staging and telemetry writers",
	Run:  run,
}

// watched are the method names whose errors carry durability information.
var watched = map[string]bool{
	"Close": true, "Sync": true, "Flush": true, "Append": true,
}

// watchedPkgs are the packages whose types are on the durability surface.
// telemetry is included because a swallowed Snapshot.Flush error is a scrape
// that silently truncated, and a swallowed DebugServer.Close leaks the debug
// listener.
var watchedPkgs = map[string]bool{
	"unicore/internal/journal":   true,
	"unicore/internal/staging":   true,
	"unicore/internal/telemetry": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(pass, call, "")
				}
			case *ast.DeferStmt:
				report(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				report(pass, n.Call, "")
			}
			return true
		})
	}
	return nil
}

// report flags call when it is a watched method on a watched type whose
// error result is being dropped.
func report(pass *analysis.Pass, call *ast.CallExpr, prefix string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !watched[sel.Sel.Name] {
		return
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || !returnsError(fn) {
		return
	}
	recv := analysis.Receiver(pass.TypesInfo, call)
	if recv == nil {
		return
	}
	if !analysis.IsNamed(recv, "os", "File") && !watchedDurabilityType(recv) {
		return
	}
	tn := analysis.Named(recv).Obj()
	pass.Reportf(call.Pos(),
		"%serror from (%s.%s).%s discarded; handle it or drop it explicitly with _ =",
		prefix, tn.Pkg().Name(), tn.Name(), sel.Sel.Name)
}

// watchedDurabilityType reports whether t is a named type of the journal or
// staging packages.
func watchedDurabilityType(t types.Type) bool {
	n := analysis.Named(t)
	return n != nil && n.Obj().Pkg() != nil && watchedPkgs[n.Obj().Pkg().Path()]
}

// returnsError reports whether the function's results include an error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}
