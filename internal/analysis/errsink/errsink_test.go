package errsink_test

import (
	"testing"

	"unicore/internal/analysis/analysistest"
	"unicore/internal/analysis/errsink"
)

func TestErrSink(t *testing.T) {
	analysistest.Run(t, errsink.Analyzer, "testdata/src/errsink")
}
