// Package fixture exercises the errsink analyzer: durability errors from
// Close/Sync must be handled or explicitly discarded.
package fixture

import (
	"io"
	"os"

	"unicore/internal/journal"
	"unicore/internal/telemetry"
)

// BadClose drops the journal store's close error — a swallowed fsync
// failure.
func BadClose(st *journal.Store) {
	st.Close() // want "error from \\(journal.Store\\).Close discarded"
}

// BadDeferredClose drops it on the deferred path.
func BadDeferredClose(name string) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer f.Close() // want "deferred error from \\(os.File\\).Close discarded"
	_, err = f.Write([]byte("x"))
	return err
}

// BadSync drops a sync error.
func BadSync(st *journal.Store) {
	st.Sync() // want "error from \\(journal.Store\\).Sync discarded"
}

// GoodClose handles the error.
func GoodClose(st *journal.Store) error {
	if err := st.Close(); err != nil {
		return err
	}
	return nil
}

// GoodExplicitDiscard states the intent: read-only file, close error
// carries nothing.
func GoodExplicitDiscard(name string) ([]byte, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}

// SuppressedClose is a reviewed discard with its reason on record.
func SuppressedClose(st *journal.Store) {
	//lint:allow errsink fixture: store already failed, close error is secondary
	st.Close()
}

// BadFlush drops a metrics flush error — the scrape silently truncated.
func BadFlush(s telemetry.Snapshot, w io.Writer) {
	s.Flush(w) // want "error from \\(telemetry.Snapshot\\).Flush discarded"
}

// BadDebugClose leaks the debug listener when Close fails.
func BadDebugClose(d *telemetry.DebugServer) {
	defer d.Close() // want "deferred error from \\(telemetry.DebugServer\\).Close discarded"
}

// GoodFlush propagates the flush error to the scrape caller.
func GoodFlush(s telemetry.Snapshot, w io.Writer) error {
	return s.Flush(w)
}
