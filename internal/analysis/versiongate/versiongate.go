// Package versiongate enforces the protocol version-gating contract (PR 4):
// v2-only message kinds (MsgSubscribe, MsgPutOpen/Chunk/Commit, MsgMetrics,
// MsgFedAdvertise/Reply) may only be used on paths that negotiate or check
// the peer's protocol version, so a new v2 message can never silently leak
// to a v1 peer as an undecodable envelope.
//
// A use of a v2-only kind is accepted when it is (a) inside package protocol
// itself, (b) an argument of a protocol.Client Call invocation
// (the client gates internally and fails fast with ErrV1Peer), or (c) inside
// a function that participates in version dispatch — one that calls
// protocol.V2Only, protocol.OpenVersioned/OpenTraced or
// protocol.SealAt/SealTracedAt. Anything else is flagged; deliberate
// exceptions carry //lint:allow versiongate <reason>.
package versiongate

import (
	"go/ast"
	"go/types"

	"unicore/internal/analysis"
)

// Analyzer flags v2-only protocol message kinds used outside version-gated
// paths.
var Analyzer = &analysis.Analyzer{
	Name: "versiongate",
	Doc:  "report v2-only protocol message kinds constructed outside SealAt/OpenVersioned/V2Only-gated paths",
	Run:  run,
}

const protocolPath = "unicore/internal/protocol"

// v2Only names the message kinds introduced by protocol version 2; keep in
// sync with protocol.V2Only.
var v2Only = map[string]bool{
	"MsgSubscribe":         true,
	"MsgPutOpen":           true,
	"MsgPutChunk":          true,
	"MsgPutCommit":         true,
	"MsgMetrics":           true,
	"MsgFedAdvertise":      true,
	"MsgFedAdvertiseReply": true,
	// v3 additions (the stream handshake pair); protocol.V2Only covers them
	// through its V3Only fall-through.
	"MsgHello":      true,
	"MsgHelloReply": true,
}

// gatingFuncs are the protocol entry points whose presence marks a function
// as version-aware.
var gatingFuncs = map[string]bool{
	"V2Only":        true,
	"V3Only":        true,
	"MinVersionFor": true,
	"OpenVersioned": true,
	"OpenTraced":    true,
	"SealAt":        true,
	"SealTracedAt":  true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == protocolPath {
		return nil
	}
	for _, f := range pass.Files {
		checkFile(pass, f)
	}
	return nil
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	// Spans of argument lists of gated client calls: a v2-only kind inside
	// one is handed to the version-negotiating client.
	type span struct{ lo, hi int }
	var clientArgs []span
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && analysis.IsMethodCall(pass.TypesInfo, call, protocolPath, "Client", "Call") {
			clientArgs = append(clientArgs, span{int(call.Lparen), int(call.Rparen)})
		}
		return true
	})
	inClientCall := func(pos int) bool {
		for _, s := range clientArgs {
			if s.lo < pos && pos < s.hi {
				return true
			}
		}
		return false
	}

	// Functions that participate in version dispatch.
	gated := make(map[*ast.FuncDecl]bool)
	var decls []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			decls = append(decls, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil &&
					fn.Pkg() != nil && fn.Pkg().Path() == protocolPath && gatingFuncs[fn.Name()] {
					gated[fd] = true
				}
				return true
			})
		}
	}
	enclosing := func(pos int) *ast.FuncDecl {
		for _, fd := range decls {
			if int(fd.Pos()) <= pos && pos < int(fd.End()) {
				return fd
			}
		}
		return nil
	}

	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		c, ok := pass.TypesInfo.Uses[id].(*types.Const)
		if !ok || c.Pkg() == nil || c.Pkg().Path() != protocolPath || !v2Only[c.Name()] {
			return true
		}
		pos := int(id.Pos())
		if inClientCall(pos) {
			return true
		}
		if fd := enclosing(pos); fd != nil && gated[fd] {
			return true
		}
		pass.Reportf(id.Pos(),
			"v2-only message kind %s used outside a version-gated path (guard with protocol.V2Only/OpenVersioned/SealAt or send via Client.Call)", c.Name())
		return true
	})
}
