// Package fixture exercises the versiongate analyzer: v2-only message kinds
// must stay behind version-negotiating paths.
package fixture

import (
	"context"

	"unicore/internal/core"
	"unicore/internal/pki"
	"unicore/internal/protocol"
)

// BadSeal seals a v2-only kind with the unversioned Seal — a v1 peer would
// receive an envelope it cannot decode.
func BadSeal(cred *pki.Credential, payload any) ([]byte, error) {
	return protocol.Seal(cred, protocol.MsgSubscribe, payload) // want "v2-only message kind MsgSubscribe"
}

// BadKindTable builds a dispatch table of v2-only kinds at package level,
// outside any gated function.
var BadKindTable = []protocol.MsgType{
	protocol.MsgPutOpen,   // want "v2-only message kind MsgPutOpen"
	protocol.MsgPutChunk,  // want "v2-only message kind MsgPutChunk"
	protocol.MsgPutCommit, // want "v2-only message kind MsgPutCommit"
}

// BadFedSeal seals a federation gossip kind without negotiating — a v1 peer
// gateway would choke on the envelope.
func BadFedSeal(cred *pki.Credential, payload any) ([]byte, error) {
	return protocol.Seal(cred, protocol.MsgFedAdvertise, payload) // want "v2-only message kind MsgFedAdvertise"
}

// BadFedReplyTable references the gossip reply kind at package level.
var BadFedReplyTable = []protocol.MsgType{
	protocol.MsgFedAdvertiseReply, // want "v2-only message kind MsgFedAdvertiseReply"
}

// GoodFedGossip hands the gossip kind to the negotiating client — the
// federation GossipOnce shape.
func GoodFedGossip(cl *protocol.Client, peer core.Usite) error {
	var reply protocol.FedAdvertiseReply
	return cl.Call(context.Background(), peer, protocol.MsgFedAdvertise, protocol.FedAdvertiseRequest{From: "FZJ"}, &reply)
}

// GoodSealAt is version-aware: it seals at an explicitly negotiated version.
func GoodSealAt(cred *pki.Credential, ver int, payload any) ([]byte, error) {
	if ver < 2 {
		return nil, protocol.ErrV1Peer
	}
	return protocol.SealAt(cred, ver, protocol.MsgSubscribe, payload)
}

// GoodDispatch guards the kind with V2Only, the server-side gate shape.
func GoodDispatch(ver int, t protocol.MsgType) error {
	if protocol.V2Only(t) && ver < 2 {
		return protocol.ErrBadVersion
	}
	switch t {
	case protocol.MsgPutOpen, protocol.MsgPutCommit:
		return nil
	}
	return nil
}

// GoodClientCall hands the kind to the negotiating client, which fails fast
// against v1 peers.
func GoodClientCall(cl *protocol.Client, usite core.Usite) error {
	var reply protocol.PutChunkReply
	return cl.Call(context.Background(), usite, protocol.MsgPutChunk, nil, &reply)
}

// SuppressedSeal is a reviewed exception with its reason on record.
func SuppressedSeal(cred *pki.Credential, payload any) ([]byte, error) {
	//lint:allow versiongate fixture: target peer is known v2-capable
	return protocol.Seal(cred, protocol.MsgPutCommit, payload)
}
