package versiongate_test

import (
	"testing"

	"unicore/internal/analysis/analysistest"
	"unicore/internal/analysis/versiongate"
)

func TestVersionGate(t *testing.T) {
	analysistest.Run(t, versiongate.Analyzer, "testdata/src/versiongate")
}
