// Package fixture exercises the lockorder analyzer with a miniature of the
// NJS registry/job shape: job records with a mu + children pair, a registry
// guarded by regMu, and a peer protocol.Client.
package fixture

import (
	"context"

	"sync"

	"unicore/internal/protocol"
)

// job mirrors njs.unicoreJob: per-job mutex plus a children map.
type job struct {
	mu       sync.Mutex
	children map[string]string
	done     bool
}

// reg mirrors the NJS registry: regMu guards the jobs map.
type reg struct {
	regMu sync.RWMutex
	jobs  map[string]*job
}

// job is the registry lookup, as in the NJS.
func (r *reg) job(id string) (*job, bool) {
	r.regMu.RLock()
	defer r.regMu.RUnlock()
	j, ok := r.jobs[id]
	return j, ok
}

// BadRegOrder locks a job while holding the registry lock — regMu must be
// innermost.
func BadRegOrder(r *reg, id string) {
	r.regMu.RLock()
	j := r.jobs[id]
	j.mu.Lock() // want "while the registry lock is held"
	j.done = true
	j.mu.Unlock()
	r.regMu.RUnlock()
}

// GoodRegOrder releases the registry lock before touching the job.
func GoodRegOrder(r *reg, id string) {
	r.regMu.RLock()
	j := r.jobs[id]
	r.regMu.RUnlock()
	j.mu.Lock()
	j.done = true
	j.mu.Unlock()
}

// BadNested locks two unrelated jobs — nothing proves b descends from a.
func BadNested(a, b *job) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "not provably ancestor→descendant"
	defer b.mu.Unlock()
}

// SuppressedNested is the reviewed version of the same shape: the caller
// guarantees the order, and the directive records why.
func SuppressedNested(a, b *job) {
	a.mu.Lock()
	defer a.mu.Unlock()
	//lint:allow lockorder fixture: caller passes b as a child of a
	b.mu.Lock()
	defer b.mu.Unlock()
}

// GoodNestedRange locks children discovered under the parent lock — the
// allowed ancestor→descendant direction.
func GoodNestedRange(r *reg, p *job) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, cid := range p.children {
		if c, ok := r.job(cid); ok {
			c.mu.Lock() // ancestor→descendant: derived from p.children
			c.done = true
			c.mu.Unlock()
		}
	}
}

// GoodNestedLookup chains the derivation through an intermediate ID.
func GoodNestedLookup(r *reg, p *job, aid string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cid := p.children[aid]
	c, ok := r.job(cid)
	if !ok {
		return
	}
	c.mu.Lock()
	c.done = true
	c.mu.Unlock()
}

// BadPeerCall performs a network round trip while holding a job lock.
func BadPeerCall(cl *protocol.Client, j *job) {
	j.mu.Lock()
	defer j.mu.Unlock()
	_ = cl.Call(context.Background(), "site", protocol.MsgPoll, nil, nil) // want "peer call through protocol.Client while job lock"
}

// GoodPeerCallBranch unlocks on the early-exit path before calling the peer;
// after the branch the lock is still held, so the second call is flagged —
// exactly the consignRemote shape, with the bug reintroduced.
func GoodPeerCallBranch(cl *protocol.Client, j *job) {
	j.mu.Lock()
	if j.done {
		j.mu.Unlock()
		_ = cl.Call(context.Background(), "site", protocol.MsgPoll, nil, nil) // released first: fine
		return
	}
	_ = cl.Call(context.Background(), "site", protocol.MsgPoll, nil, nil) // want "peer call through protocol.Client while job lock"
	j.mu.Unlock()
}

// GoodLiteral runs its peer call on a timer goroutine with no lock state
// inherited from the enclosing function.
func GoodLiteral(cl *protocol.Client, j *job, after func(func())) {
	j.mu.Lock()
	defer j.mu.Unlock()
	after(func() {
		_ = cl.Call(context.Background(), "site", protocol.MsgPoll, nil, nil) // fresh goroutine: fine
	})
}
