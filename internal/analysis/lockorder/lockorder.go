// Package lockorder enforces the NJS locking contract (PR 1): per-job locks
// nest strictly ancestor→descendant, the registry lock (regMu) is innermost
// (never held across a job-lock acquisition), and no per-job lock is held
// across a peer call through protocol.Client — a network round trip under a
// job lock would let one slow site block Poll/Control on the local job.
//
// The analyzer recognizes "job" locks syntactically and by type: a call
// x.mu.Lock() where x's type is a struct with a sync.Mutex field `mu` and a
// `children` field, matching njs.unicoreJob and fixture doubles alike. The
// registry lock is any `.regMu` RWMutex. Within one function it tracks the
// held set in source order, forking the set at branches (a branch that
// unlocks and returns does not release the lock for the code after it).
//
// A nested job-lock acquisition is accepted only when the inner variable
// provably descends from an already-held job: it was read from
// `<held>.children[...]` (directly, by range, or passed through a job/jobs
// registry lookup). Sites that honor the contract through arguments the
// analyzer cannot trace — a callee locking a parent and a child it was
// handed — carry //lint:allow lockorder <reason>.
package lockorder

import (
	"go/ast"
	"go/types"

	"unicore/internal/analysis"
)

// Analyzer flags registry-before-job lock orders, unprovable nested job
// locks, and peer calls under a job lock.
var Analyzer = &analysis.Analyzer{
	Name:  "lockorder",
	Doc:   "report job/registry lock acquisitions violating the ancestor→descendant order and peer calls made under a per-job lock",
	Scope: []string{"unicore/internal/njs"},
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanFunc(pass, fd.Body)
		}
	}
	return nil
}

// scanFunc checks one function body, then every function literal it contains
// with a fresh held-set (literals run later — deferred, on timers, or on
// other goroutines — so they inherit no syntactic lock state).
func scanFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	s := &scanner{pass: pass, derived: derivations(pass, body)}
	s.stmts(body.List)
	for i := 0; i < len(s.lits); i++ { // lits may grow while scanning lits
		lit := s.lits[i]
		s.stack = nil
		s.stmts(lit.Body.List)
	}
}

// lockKind discriminates held-set entries.
type lockKind int

const (
	jobLock lockKind = iota
	regLock
)

// held is one lock on the scanner's stack.
type held struct {
	kind lockKind
	key  string // root expression of the owning job, e.g. "uj"
}

// scanner tracks the held locks through one function in source order.
type scanner struct {
	pass    *analysis.Pass
	derived map[string][]string
	stack   []held
	lits    []*ast.FuncLit
}

// stmts scans a list and reports whether control definitely leaves it
// (return/break/continue/goto).
func (s *scanner) stmts(list []ast.Stmt) bool {
	terminated := false
	for _, st := range list {
		if s.stmt(st) {
			terminated = true
		}
	}
	return terminated
}

func (s *scanner) stmt(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return s.stmts(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.calls(st.Cond)
		pre := s.clone()
		bodyTerm := s.stmts(st.Body.List)
		bodyStack := s.stack
		elseTerm := true
		var elseStack []held
		if st.Else != nil {
			s.stack = cloneOf(pre)
			elseTerm = s.stmt(st.Else)
			elseStack = s.stack
		} else {
			elseStack = pre
			elseTerm = false
		}
		switch {
		case bodyTerm && elseTerm:
			s.stack = pre
			return true
		case bodyTerm:
			s.stack = elseStack
		case elseTerm:
			s.stack = bodyStack
		default:
			s.stack = bodyStack // approximation: branches usually rejoin equal
		}
		return false
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.calls(st.Cond)
		s.stmts(st.Body.List)
		return false
	case *ast.RangeStmt:
		s.calls(st.X)
		s.stmts(st.Body.List)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		s.clauses(st)
		return false
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.calls(r)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeferStmt:
		// A deferred unlock releases at function end — the lock stays held
		// for everything after, which the stack already expresses by not
		// popping. Other deferred work is queued like a literal.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.lits = append(s.lits, lit)
		}
		return false
	case *ast.GoStmt:
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.lits = append(s.lits, lit)
		}
		return false
	default:
		s.calls(st)
		return false
	}
}

// clauses scans each case/comm clause of a switch/select against a copy of
// the pre-switch held set.
func (s *scanner) clauses(st ast.Stmt) {
	body := func() *ast.BlockStmt {
		switch st := st.(type) {
		case *ast.SwitchStmt:
			if st.Init != nil {
				s.stmt(st.Init)
			}
			s.calls(st.Tag)
			return st.Body
		case *ast.TypeSwitchStmt:
			return st.Body
		case *ast.SelectStmt:
			return st.Body
		}
		return nil
	}()
	pre := s.clone()
	result := pre
	picked := false
	for _, c := range body.List {
		s.stack = cloneOf(pre)
		var term bool
		switch c := c.(type) {
		case *ast.CaseClause:
			term = s.stmts(c.Body)
		case *ast.CommClause:
			term = s.stmts(c.Body)
		}
		if !term && !picked {
			result = s.stack
			picked = true
		}
	}
	s.stack = result
}

// calls processes every call in a node in source order, skipping function
// literal bodies (queued for a separate fresh-stack scan).
func (s *scanner) calls(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.lits = append(s.lits, n)
			return false
		case *ast.CallExpr:
			s.call(n)
		}
		return true
	})
}

// call interprets one call as a lock event or a peer call.
func (s *scanner) call(call *ast.CallExpr) {
	info := s.pass.TypesInfo
	if analysis.IsMethodCall(info, call, "unicore/internal/protocol", "Client", "Call", "callOnce", "streamCall") {
		for _, h := range s.stack {
			if h.kind == jobLock {
				s.pass.Reportf(call.Pos(),
					"peer call through protocol.Client while job lock %q is held; release it before the network round trip", h.key)
				break
			}
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	op := sel.Sel.Name
	if op != "Lock" && op != "Unlock" && op != "RLock" && op != "RUnlock" {
		return
	}
	recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch {
	case recv.Sel.Name == "regMu":
		s.event(regLock, "regMu", op, call)
	case recv.Sel.Name == "mu" && isJobStruct(info.TypeOf(recv.X)):
		s.event(jobLock, types.ExprString(recv.X), op, call)
	}
}

// event applies one lock/unlock to the held set, reporting order violations
// on acquisition.
func (s *scanner) event(kind lockKind, key, op string, call *ast.CallExpr) {
	acquire := op == "Lock" || op == "RLock"
	if !acquire {
		for i := len(s.stack) - 1; i >= 0; i-- {
			if s.stack[i].kind == kind && s.stack[i].key == key {
				s.stack = append(s.stack[:i], s.stack[i+1:]...)
				return
			}
		}
		return // unlock of a lock taken by the caller: no-op
	}
	if kind == jobLock {
		for _, h := range s.stack {
			if h.kind == regLock {
				s.pass.Reportf(call.Pos(),
					"job lock %q acquired while the registry lock is held (regMu is innermost: job → registry, never the reverse)", key)
				break
			}
		}
		for _, h := range s.stack {
			if h.kind == jobLock && h.key != key && !s.descendsFrom(key, h.key) {
				s.pass.Reportf(call.Pos(),
					"nested job lock %q under %q is not provably ancestor→descendant; restructure or annotate //lint:allow lockorder <reason>", key, h.key)
				break
			}
		}
	}
	s.stack = append(s.stack, held{kind: kind, key: key})
}

// descendsFrom reports whether the derivation edges link child to ancestor.
func (s *scanner) descendsFrom(child, ancestor string) bool {
	seen := map[string]bool{}
	var walk func(v string) bool
	walk = func(v string) bool {
		if v == ancestor {
			return true
		}
		if seen[v] {
			return false
		}
		seen[v] = true
		for _, p := range s.derived[v] {
			if walk(p) {
				return true
			}
		}
		return false
	}
	return walk(child)
}

func (s *scanner) clone() []held { return cloneOf(s.stack) }

func cloneOf(st []held) []held {
	out := make([]held, len(st))
	copy(out, st)
	return out
}

// isJobStruct reports whether t (behind pointers) is a struct with a
// sync.Mutex field `mu` and a `children` field — the shape of a per-job
// state record.
func isJobStruct(t types.Type) bool {
	n := analysis.Named(t)
	if n == nil {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	hasMu, hasChildren := false, false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch f.Name() {
		case "mu":
			hasMu = analysis.IsNamed(f.Type(), "sync", "Mutex")
		case "children":
			hasChildren = true
		}
	}
	return hasMu && hasChildren
}

// derivations builds the child-of edges for one function: v → p when v was
// read from p.children (index or range) or looked up from a value that was.
func derivations(pass *analysis.Pass, body *ast.BlockStmt) map[string][]string {
	edges := make(map[string][]string)
	add := func(child, parent string) {
		if child == "" || parent == "" || child == "_" {
			return
		}
		edges[child] = append(edges[child], parent)
	}
	// Two passes so a lookup that precedes the children read in source
	// order (rare, but cheap to cover) still chains.
	for range 2 {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				lhs := exprName(n.Lhs[0])
				switch rhs := ast.Unparen(n.Rhs[0]).(type) {
				case *ast.IndexExpr:
					if p := childrenOwner(rhs); p != "" {
						add(lhs, p)
					} else if k := exprName(rhs.Index); k != "" && len(edges[k]) > 0 {
						// jobs[childID]-style registry read keyed by a
						// derived ID.
						add(lhs, k)
					}
				case *ast.CallExpr:
					// job(childID)-style registry lookup: the result
					// descends from whatever the key descends from.
					if analysis.CalleeName(rhs) == "job" && len(rhs.Args) == 1 {
						if p := childrenOwner(rhs.Args[0]); p != "" {
							add(lhs, p)
						} else if k := exprName(rhs.Args[0]); k != "" {
							add(lhs, k)
						}
					}
				}
			case *ast.RangeStmt:
				if p := childrenOwner(n.X); p != "" {
					add(exprName(n.Value), p)
					add(exprName(n.Key), p)
				}
			}
			return true
		})
	}
	return edges
}

// childrenOwner returns the printed owner expression when e reads
// `<owner>.children` (directly or through one index), else "".
func childrenOwner(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.IndexExpr:
		return childrenOwner(e.X)
	case *ast.SelectorExpr:
		if e.Sel.Name == "children" {
			return types.ExprString(e.X)
		}
	}
	return ""
}

// exprName returns the identifier name of e, or its printed form for selector
// chains, or "" for anything else.
func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return types.ExprString(e)
	case nil:
		return ""
	}
	return ""
}
