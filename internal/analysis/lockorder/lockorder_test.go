package lockorder_test

import (
	"testing"

	"unicore/internal/analysis/analysistest"
	"unicore/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata/src/lockorder")
}
