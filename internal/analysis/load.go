package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed and type-checked package, ready for analyzers.
type Package struct {
	// Fset is the loader's shared file set.
	Fset *token.FileSet
	// Files are the package's non-test syntax trees, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds type-checker facts for Files.
	Info *types.Info
	// Dir is the directory the package was loaded from.
	Dir string
}

// Loader parses and type-checks package directories. All loads share one
// file set and one source importer, so a dependency (for example
// unicore/internal/protocol) is parsed and checked at most once per process
// no matter how many packages import it.
type Loader struct {
	// Fset is the file set shared by every package this loader returns.
	Fset *token.FileSet

	imp types.Importer
}

// NewLoader returns a loader backed by the stdlib source importer, which
// resolves imports from source within the current module — no export data
// or network access required.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Load parses the non-test Go files of the package in dir and type-checks
// them under the given import path. Build constraints are honored; test
// files are excluded (analyzers check shipped code, and the source importer
// cannot resolve external test packages).
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, build.ImportComment)
	if err != nil {
		return nil, fmt.Errorf("analysis: listing %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{Fset: l.Fset, Files: files, Pkg: pkg, Info: info, Dir: dir}, nil
}

// ListedPackage is one entry resolved from a package pattern by the go
// command.
type ListedPackage struct {
	// Dir is the package's source directory.
	Dir string
	// ImportPath is the package's import path.
	ImportPath string
}

// List expands package patterns (./..., explicit paths) into directories and
// import paths via `go list`. It is how tools/unilint enumerates the module.
func List(patterns ...string) ([]ListedPackage, error) {
	args := append([]string{"list", "-f", "{{.Dir}}\t{{.ImportPath}}"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []ListedPackage
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line == "" {
			continue
		}
		dir, path, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("analysis: unexpected go list output %q", line)
		}
		pkgs = append(pkgs, ListedPackage{Dir: dir, ImportPath: path})
	}
	return pkgs, nil
}
