// Package analysistest runs an analyzer over a fixture package and compares
// its findings against expectations written in the fixture source, in the
// style of golang.org/x/tools/go/analysis/analysistest. A fixture line that
// should be flagged carries a trailing comment
//
//	// want "regexp"
//
// where the quoted Go string is a regular expression the diagnostic message
// must match. Fixtures live under testdata/ (ignored by the go tool) and may
// import real repository packages; they are type-checked with the same
// source-importer loader the unilint driver uses, and //lint:allow
// suppression is applied before matching, so fixtures exercise the
// suppression path too.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"unicore/internal/analysis"
)

// loader is shared across Run calls within one test binary so repository
// dependencies (protocol, journal, ...) are type-checked once.
var loader = analysis.NewLoader()

// want is one expectation parsed from a fixture comment.
type want struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture package rooted at dir (conventionally
// "testdata/src/<name>" relative to the test), applies the analyzer, filters
// //lint:allow directives, and reports any mismatch between diagnostics and
// the fixture's want comments as test failures.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := loader.Load(dir, "fixture/"+a.Name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	diags = analysis.Filter(diags, analysis.Directives(pkg.Fset, pkg.Files), map[string]bool{a.Name: true})

	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := d.Pos.Filename + ":" + strconv.Itoa(d.Pos.Line)
		w := match(wants[key], d.Message)
		if w == nil {
			t.Errorf("unexpected diagnostic at %s:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Message, d.Analyzer)
			continue
		}
		w.matched = true
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("no diagnostic at %s matching %q", key, w.re)
			}
		}
	}
}

// match returns the first unmatched expectation whose regexp matches msg.
func match(ws []*want, msg string) *want {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants parses every `// want "re"` comment, keyed by file:line.
func collectWants(t *testing.T, pkg *analysis.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				lit := strings.TrimSpace(m[1])
				s, err := strconv.Unquote(lit)
				if err != nil {
					t.Fatalf("%s: bad want expectation %s: %v", pkg.Fset.Position(c.Pos()), lit, err)
				}
				re, err := regexp.Compile(s)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), s, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				key := pos.Filename + ":" + strconv.Itoa(pos.Line)
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
	return wants
}
