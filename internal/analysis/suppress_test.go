package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"strings"
	"testing"
)

const suppressSrc = `package p

func a() {
	//lint:allow fake reviewed: reason on record
	_ = 1
	_ = 2 //lint:allow fake trailing placement works too
}

func b() {
	//lint:allow fake
	_ = 3
}

func c() {
	//lint:allow mystery some reason
	_ = 4
}
`

func diagAt(line int, analyzer string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: "p.go", Line: line},
		Analyzer: analyzer,
		Message:  "synthetic finding",
	}
}

func TestFilterSuppression(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	directives := Directives(fset, []*ast.File{f})
	known := map[string]bool{"fake": true}

	diags := []Diagnostic{
		diagAt(5, "fake"),  // covered by the line-above directive (line 4)
		diagAt(6, "fake"),  // covered by the trailing directive on line 6
		diagAt(11, "fake"), // directive on line 10 is malformed: finding survives
		diagAt(5, "other"), // different analyzer: not covered
	}
	kept := Filter(diags, directives, known)

	var msgs []string
	for _, k := range kept {
		msgs = append(msgs, k.Analyzer+":"+strconv.Itoa(k.Pos.Line)+":"+k.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{
		"unilint:10:malformed //lint:allow directive",
		`unilint:15:unknown analyzer "mystery"`,
		"fake:11:synthetic finding",
		"other:5:synthetic finding",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in kept diagnostics:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "fake:5:") || strings.Contains(joined, "fake:6:") {
		t.Errorf("suppressed findings survived:\n%s", joined)
	}
	if len(kept) != 4 {
		t.Errorf("kept %d diagnostics, want 4:\n%s", len(kept), joined)
	}
}

func TestDirectivesParsing(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ds := Directives(fset, []*ast.File{f})
	if len(ds) != 4 {
		t.Fatalf("parsed %d directives, want 4: %+v", len(ds), ds)
	}
	if ds[0].Analyzer != "fake" || ds[0].Reason != "reviewed: reason on record" || ds[0].Malformed {
		t.Errorf("directive 0 parsed as %+v", ds[0])
	}
	if !ds[2].Malformed {
		t.Errorf("reason-less directive not marked malformed: %+v", ds[2])
	}
}
