// Package events is the server-side half of the protocol-v2 session API:
// a bounded, in-memory log of job lifecycle events with monotonic cursors.
//
// The paper's §5.3 protocol is asynchronous only per interaction — clients
// still discover job progress by polling, which cannot serve millions of
// watchers (one signed envelope per watcher per interval). The production
// UNICORE line moved job monitoring to server-maintained state notification;
// this package reproduces that: every NJS appends the lifecycle events of
// the jobs it supervises (admitted, action status transitions, action done,
// completed/aborted) to a Log, and subscribers fetch batches past a cursor
// (protocol.MsgSubscribe) instead of polling status.
//
// # Cursor model
//
// Every event carries two monotonic positions:
//
//   - Seq — the per-job sequence (1, 2, 3, ... for that job). Job-scoped
//     subscriptions resume at a Seq cursor. Seq is replica-independent: a
//     journal-recovered NJS restores each job's event list with its original
//     numbering, so a cursor taken before a crash stays valid against the
//     recovered replica — the cursor-translation-free failover contract the
//     pool router relies on.
//   - Global — the per-log (per-replica) append sequence. User-scoped
//     subscriptions (all of one owner's jobs on one replica) resume at a
//     Global cursor, keyed by the replica's Origin tag when replies from a
//     replica pool are merged.
//
// # Bounds
//
// The log is bounded per job: once a job has more than the configured cap of
// retained events the oldest are evicted and a subscription resuming below
// the retained window is told so (gap flag) instead of silently skipping.
package events

import (
	"sort"
	"sync"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
)

// Type classifies a job lifecycle event.
type Type string

// The event types an NJS appends.
const (
	// TypeAdmitted is the first event of every job: consignment accepted.
	TypeAdmitted Type = "admitted"
	// TypeStatus is a non-terminal action transition (queued, running).
	TypeStatus Type = "status"
	// TypeActionDone is a terminal action transition (successful, failed,
	// not-done, aborted), including cascades.
	TypeActionDone Type = "action-done"
	// TypeControl is a hold/resume/abort control applied to the job.
	TypeControl Type = "control"
	// TypeJobDone is the job's terminal aggregate status — always the last
	// event of a job, and the only one with Terminal set.
	TypeJobDone Type = "job-done"
)

// Event is one job lifecycle notification. It is both the in-memory log
// record and the protocol-v2 wire shape (protocol.JobEvent aliases it).
type Event struct {
	// Job is the UNICORE job the event belongs to.
	Job core.JobID `json:"job"`
	// Seq is the per-job monotonic sequence, starting at 1.
	Seq uint64 `json:"seq"`
	// Global is the per-log (per-replica) append sequence.
	Global uint64 `json:"global"`
	// Origin tags the replica that appended the event ("" on a single NJS).
	Origin string `json:"origin,omitempty"`
	// Type classifies the event.
	Type Type `json:"type"`
	// Action is the action the event concerns (empty for job-level events).
	Action ajo.ActionID `json:"action,omitempty"`
	// Status is the action status (or, for job-level events, root status).
	Status ajo.Status `json:"status"`
	// Reason carries the failure reason or the control op name.
	Reason string `json:"reason,omitempty"`
	// Time is the server clock instant the event was appended.
	Time time.Time `json:"time"`
	// Terminal marks the job's final event (TypeJobDone).
	Terminal bool `json:"terminal,omitempty"`
}

// DefaultJobCap is the default number of events retained per job.
const DefaultJobCap = 256

// jobLog is the bounded event window of one job.
type jobLog struct {
	owner  core.DN
	first  uint64 // Seq of events[0] (first+len-1 == last when non-empty)
	last   uint64 // Seq of the newest event ever appended (survives eviction)
	events []Event
}

// Log is one NJS's event log. All methods are safe for concurrent use; no
// method performs I/O, so appending under a job lock is cheap.
type Log struct {
	mu      sync.Mutex
	origin  string
	cap     int
	global  uint64
	evicted uint64 // highest Global ever evicted (user-stream gap detection)
	jobs    map[core.JobID]*jobLog
	byUser  map[core.DN][]core.JobID
	notify  chan struct{}
}

// NewLog creates a log. origin tags every event with the appending replica's
// pool identity; jobCap bounds retained events per job (<= 0 selects
// DefaultJobCap).
func NewLog(origin string, jobCap int) *Log {
	if jobCap <= 0 {
		jobCap = DefaultJobCap
	}
	return &Log{
		origin: origin,
		cap:    jobCap,
		jobs:   make(map[core.JobID]*jobLog),
		byUser: make(map[core.DN][]core.JobID),
		notify: make(chan struct{}),
	}
}

// Origin returns the replica tag this log stamps on events.
func (l *Log) Origin() string { return l.origin }

// jobLogLocked returns (creating if needed) a job's window; callers hold l.mu.
func (l *Log) jobLogLocked(owner core.DN, job core.JobID) *jobLog {
	jl, ok := l.jobs[job]
	if !ok {
		jl = &jobLog{owner: owner, first: 1}
		l.jobs[job] = jl
		l.byUser[owner] = append(l.byUser[owner], job)
	}
	return jl
}

// evictLocked trims a job's window to the cap; callers hold l.mu.
func (l *Log) evictLocked(jl *jobLog) {
	for len(jl.events) > l.cap {
		if g := jl.events[0].Global; g > l.evicted {
			l.evicted = g
		}
		jl.events = jl.events[1:]
		jl.first++
	}
}

// Append assigns the next per-job and per-log sequence numbers to ev, stamps
// the origin, stores it, wakes every waiter, and returns the completed event
// (the caller journals that exact record for crash recovery).
func (l *Log) Append(owner core.DN, ev Event) Event {
	l.mu.Lock()
	jl := l.jobLogLocked(owner, ev.Job)
	jl.last++
	l.global++
	ev.Seq = jl.last
	ev.Global = l.global
	ev.Origin = l.origin
	jl.events = append(jl.events, ev)
	l.evictLocked(jl)
	close(l.notify)
	l.notify = make(chan struct{})
	l.mu.Unlock()
	return ev
}

// Restore re-inserts an event replayed from the journal, keeping its original
// sequence numbers. Replay of a snapshot plus its tail may present the same
// event twice; duplicates (Seq not past the job's newest) are dropped, which
// is what keeps cursors stable across crash recovery.
func (l *Log) Restore(owner core.DN, ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	jl := l.jobLogLocked(owner, ev.Job)
	if ev.Seq <= jl.last {
		return // snapshot + tail overlap
	}
	if len(jl.events) == 0 {
		jl.first = ev.Seq
	}
	jl.last = ev.Seq
	jl.events = append(jl.events, ev)
	if ev.Global > l.global {
		l.global = ev.Global
	}
	l.evictLocked(jl)
}

// Owner returns the owner of a job's event stream.
func (l *Log) Owner(job core.JobID) (core.DN, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	jl, ok := l.jobs[job]
	if !ok {
		return "", false
	}
	return jl.owner, true
}

// JobEvents returns up to max events of one job with Seq > after, in order.
// gap reports that events between the cursor and the first returned event
// were evicted (the subscriber resumed below the retained window).
func (l *Log) JobEvents(job core.JobID, after uint64, max int) (evs []Event, gap bool) {
	if max <= 0 {
		max = DefaultJobCap
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	jl, ok := l.jobs[job]
	if !ok {
		return nil, false
	}
	if after+1 < jl.first {
		gap = true
		after = jl.first - 1
	}
	if after >= jl.last {
		return nil, gap
	}
	start := int(after + 1 - jl.first)
	end := len(jl.events)
	if end-start > max {
		end = start + max
	}
	return append([]Event(nil), jl.events[start:end]...), gap
}

// UserEvents returns up to max events across all of one owner's jobs with
// Global > after, ordered by Global. next is the cursor to resume at; gap
// reports that events at or below the cursor horizon were evicted.
func (l *Log) UserEvents(owner core.DN, after uint64, max int) (evs []Event, next uint64, gap bool) {
	if max <= 0 {
		max = DefaultJobCap
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, job := range l.byUser[owner] {
		jl := l.jobs[job]
		for _, ev := range jl.events {
			if ev.Global > after {
				evs = append(evs, ev)
			}
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Global < evs[j].Global })
	if len(evs) > max {
		evs = evs[:max]
	}
	next = after
	if n := len(evs); n > 0 {
		next = evs[n-1].Global
	}
	return evs, next, after < l.evicted
}

// Notify returns a channel that is closed at the next append — the wait
// primitive behind the gateway's long-poll. Take the channel before fetching,
// then wait on it only if the fetch came back empty, so an append racing the
// fetch is never missed.
func (l *Log) Notify() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.notify
}

// Depth returns the number of currently retained events across all jobs —
// the live occupancy of the bounded per-job windows (telemetry's
// event_log_depth gauge).
func (l *Log) Depth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, jl := range l.jobs {
		n += len(jl.events)
	}
	return n
}

// Snapshot returns every retained event ordered by Global — the event-log
// part of an NJS snapshot, replayed through Restore on recovery.
func (l *Log) Snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, jl := range l.jobs {
		out = append(out, jl.events...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Global < out[j].Global })
	return out
}
