package events

import (
	"fmt"
	"sync"
	"testing"

	"unicore/internal/ajo"
	"unicore/internal/core"
)

const (
	alice = core.DN("CN=Alice")
	bob   = core.DN("CN=Bob")
)

func appendN(l *Log, owner core.DN, job core.JobID, n int) {
	for i := 0; i < n; i++ {
		typ := TypeStatus
		if i == 0 {
			typ = TypeAdmitted
		}
		l.Append(owner, Event{Job: job, Type: typ, Status: ajo.StatusRunning})
	}
}

func TestAppendAssignsMonotonicCursors(t *testing.T) {
	l := NewLog("r1", 0)
	appendN(l, alice, "J1", 3)
	appendN(l, alice, "J2", 2)

	evs, gap := l.JobEvents("J1", 0, 0)
	if gap {
		t.Fatal("unexpected gap on a fresh log")
	}
	if len(evs) != 3 {
		t.Fatalf("J1 events = %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Origin != "r1" {
			t.Fatalf("event origin = %q, want r1", ev.Origin)
		}
	}
	// Per-job sequences are independent; globals are log-wide.
	evs2, _ := l.JobEvents("J2", 0, 0)
	if evs2[0].Seq != 1 || evs2[0].Global != 4 {
		t.Fatalf("J2 first event Seq/Global = %d/%d, want 1/4", evs2[0].Seq, evs2[0].Global)
	}
}

func TestCursorResumesWithoutGapsOrDuplicates(t *testing.T) {
	l := NewLog("", 0)
	appendN(l, alice, "J1", 5)
	first, _ := l.JobEvents("J1", 0, 2)
	if len(first) != 2 {
		t.Fatalf("batch = %d events, want 2 (max)", len(first))
	}
	rest, _ := l.JobEvents("J1", first[len(first)-1].Seq, 0)
	if len(rest) != 3 {
		t.Fatalf("resume batch = %d events, want 3", len(rest))
	}
	if rest[0].Seq != 3 {
		t.Fatalf("resume starts at Seq %d, want 3", rest[0].Seq)
	}
	// Re-fetching at the same cursor duplicates nothing new and loses nothing.
	again, _ := l.JobEvents("J1", 2, 0)
	if len(again) != 3 || again[0].Seq != 3 {
		t.Fatalf("idempotent re-fetch returned %d events starting at %d", len(again), again[0].Seq)
	}
	if tail, _ := l.JobEvents("J1", 5, 0); len(tail) != 0 {
		t.Fatalf("fetch past the end returned %d events", len(tail))
	}
}

func TestBoundedEvictionReportsGap(t *testing.T) {
	l := NewLog("", 4)
	appendN(l, alice, "J1", 10)
	evs, gap := l.JobEvents("J1", 0, 0)
	if !gap {
		t.Fatal("resume below the retained window did not flag a gap")
	}
	if len(evs) != 4 || evs[0].Seq != 7 {
		t.Fatalf("retained window = %d events from Seq %d, want 4 from 7", len(evs), evs[0].Seq)
	}
	// A cursor inside the window is gap-free.
	if _, gap := l.JobEvents("J1", 7, 0); gap {
		t.Fatal("in-window cursor flagged a gap")
	}
}

func TestUserStreamMergesJobsByGlobal(t *testing.T) {
	l := NewLog("", 0)
	l.Append(alice, Event{Job: "J1", Type: TypeAdmitted})
	l.Append(bob, Event{Job: "J9", Type: TypeAdmitted})
	l.Append(alice, Event{Job: "J2", Type: TypeAdmitted})
	l.Append(alice, Event{Job: "J1", Type: TypeJobDone, Terminal: true})

	evs, next, gap := l.UserEvents(alice, 0, 0)
	if gap {
		t.Fatal("unexpected user-stream gap")
	}
	if len(evs) != 3 {
		t.Fatalf("alice sees %d events, want 3 (bob's are filtered)", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Global <= evs[i-1].Global {
			t.Fatal("user stream not ordered by Global")
		}
	}
	if next != evs[2].Global {
		t.Fatalf("next cursor = %d, want %d", next, evs[2].Global)
	}
	if more, _, _ := l.UserEvents(alice, next, 0); len(more) != 0 {
		t.Fatalf("resume at next returned %d events, want 0", len(more))
	}
}

func TestRestoreIsIdempotentAndKeepsNumbering(t *testing.T) {
	l := NewLog("r1", 0)
	appendN(l, alice, "J1", 4)
	snap := l.Snapshot()

	recovered := NewLog("r1", 0)
	// Snapshot + tail overlap: replay everything twice.
	for _, ev := range snap {
		recovered.Restore(alice, ev)
	}
	for _, ev := range snap {
		recovered.Restore(alice, ev)
	}
	evs, gap := recovered.JobEvents("J1", 0, 0)
	if gap || len(evs) != 4 {
		t.Fatalf("recovered log: %d events (gap=%v), want 4", len(evs), gap)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) || ev.Seq != snap[i].Seq || ev.Global != snap[i].Global {
			t.Fatalf("recovered event %d renumbered: %+v vs %+v", i, ev, snap[i])
		}
	}
	// Appends after recovery continue the original numbering.
	ev := recovered.Append(alice, Event{Job: "J1", Type: TypeJobDone, Terminal: true})
	if ev.Seq != 5 {
		t.Fatalf("post-recovery append Seq = %d, want 5", ev.Seq)
	}
}

func TestNotifyWakesWaiters(t *testing.T) {
	l := NewLog("", 0)
	ch := l.Notify()
	select {
	case <-ch:
		t.Fatal("notify channel closed before any append")
	default:
	}
	l.Append(alice, Event{Job: "J1", Type: TypeAdmitted})
	select {
	case <-ch:
	default:
		t.Fatal("append did not close the notify channel")
	}
	// The channel taken after the append waits for the next one.
	select {
	case <-l.Notify():
		t.Fatal("fresh notify channel already closed")
	default:
	}
}

func TestConcurrentAppendsRace(t *testing.T) {
	l := NewLog("", 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			job := core.JobID(fmt.Sprintf("J%d", g))
			for i := 0; i < 200; i++ {
				l.Append(alice, Event{Job: job, Type: TypeStatus})
				l.JobEvents(job, 0, 16)
				l.UserEvents(alice, 0, 16)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		job := core.JobID(fmt.Sprintf("J%d", g))
		evs, _ := l.JobEvents(job, 200-64, 0)
		if len(evs) != 64 {
			t.Fatalf("job %s retained %d events, want 64", job, len(evs))
		}
	}
}
