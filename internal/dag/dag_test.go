package dag

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, nodes []string, edges [][2]string) *Graph {
	t.Helper()
	g := New()
	for _, n := range nodes {
		if err := g.AddNode(n); err != nil {
			t.Fatalf("AddNode(%q): %v", n, err)
		}
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%q,%q): %v", e[0], e[1], err)
		}
	}
	return g
}

func TestAddNodeDuplicate(t *testing.T) {
	g := New()
	if err := g.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("a"); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("err = %v, want ErrDuplicateNode", err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := mustBuild(t, []string{"a", "b"}, nil)
	if err := g.AddEdge("a", "x"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown to: %v", err)
	}
	if err := g.AddEdge("x", "a"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown from: %v", err)
	}
	if err := g.AddEdge("a", "a"); !errors.Is(err, ErrSelfEdge) {
		t.Fatalf("self edge: %v", err)
	}
}

func TestCycleRejected(t *testing.T) {
	g := mustBuild(t, []string{"a", "b", "c"}, [][2]string{{"a", "b"}, {"b", "c"}})
	if err := g.AddEdge("c", "a"); !errors.Is(err, ErrCycle) {
		t.Fatalf("closing edge: err = %v, want ErrCycle", err)
	}
	// Graph must be unchanged by the failed insert.
	if got := g.Successors("c"); len(got) != 0 {
		t.Fatalf("failed AddEdge mutated graph: succ(c) = %v", got)
	}
}

func TestDuplicateEdgeIsNoop(t *testing.T) {
	g := mustBuild(t, []string{"a", "b"}, [][2]string{{"a", "b"}})
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatalf("duplicate edge: %v", err)
	}
	if got := g.Successors("a"); len(got) != 1 {
		t.Fatalf("succ(a) = %v, want exactly [b]", got)
	}
}

func TestTopoSortDiamond(t *testing.T) {
	g := mustBuild(t, []string{"pre", "left", "right", "post"},
		[][2]string{{"pre", "left"}, {"pre", "right"}, {"left", "post"}, {"right", "post"}})
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range [][2]string{{"pre", "left"}, {"pre", "right"}, {"left", "post"}, {"right", "post"}} {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("order %v violates %v", order, e)
		}
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	build := func() *Graph {
		g := New()
		for i := 0; i < 20; i++ {
			_ = g.AddNode(fmt.Sprintf("n%02d", i))
		}
		for i := 0; i < 19; i += 2 {
			_ = g.AddEdge(fmt.Sprintf("n%02d", i), fmt.Sprintf("n%02d", i+1))
		}
		return g
	}
	a, _ := build().TopoSort()
	b, _ := build().TopoSort()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("nondeterministic topo sort:\n%v\n%v", a, b)
	}
}

func TestRootsLeaves(t *testing.T) {
	g := mustBuild(t, []string{"a", "b", "c", "d"},
		[][2]string{{"a", "b"}, {"b", "c"}})
	if got := g.Roots(); fmt.Sprint(got) != "[a d]" {
		t.Fatalf("Roots = %v", got)
	}
	if got := g.Leaves(); fmt.Sprint(got) != "[c d]" {
		t.Fatalf("Leaves = %v", got)
	}
}

func TestReadyFrontier(t *testing.T) {
	g := mustBuild(t, []string{"imp", "run", "exp"},
		[][2]string{{"imp", "run"}, {"run", "exp"}})
	done := map[string]bool{}
	if got := g.Ready(done); fmt.Sprint(got) != "[imp]" {
		t.Fatalf("Ready(∅) = %v", got)
	}
	done["imp"] = true
	if got := g.Ready(done); fmt.Sprint(got) != "[run]" {
		t.Fatalf("Ready(imp) = %v", got)
	}
	done["run"] = true
	done["exp"] = true
	if got := g.Ready(done); len(got) != 0 {
		t.Fatalf("Ready(all) = %v, want empty", got)
	}
}

func TestDescendants(t *testing.T) {
	g := mustBuild(t, []string{"a", "b", "c", "d"},
		[][2]string{{"a", "b"}, {"b", "c"}})
	got, err := g.Descendants("a")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[b c]" {
		t.Fatalf("Descendants(a) = %v", got)
	}
	if _, err := g.Descendants("zz"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Descendants(zz) err = %v", err)
	}
}

func TestCriticalPath(t *testing.T) {
	g := mustBuild(t, []string{"a", "b", "c", "d"},
		[][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}})
	w := map[string]float64{"a": 1, "b": 10, "c": 2, "d": 1}
	path, total := g.CriticalPath(func(id string) float64 { return w[id] })
	if fmt.Sprint(path) != "[a b d]" {
		t.Fatalf("path = %v, want [a b d]", path)
	}
	if total != 12 {
		t.Fatalf("total = %v, want 12", total)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	path, total := New().CriticalPath(nil)
	if path != nil || total != 0 {
		t.Fatalf("empty graph: path=%v total=%v", path, total)
	}
}

func TestClone(t *testing.T) {
	g := mustBuild(t, []string{"a", "b"}, [][2]string{{"a", "b"}})
	c := g.Clone()
	_ = c.AddNode("z")
	_ = c.AddEdge("b", "z")
	if g.Has("z") {
		t.Fatal("mutation of clone leaked into original")
	}
	if got := c.Successors("b"); fmt.Sprint(got) != "[z]" {
		t.Fatalf("clone succ(b) = %v", got)
	}
}

// randomDAG builds a random graph where edges only point from lower to
// higher indices, so it is a DAG by construction.
func randomDAG(r *rand.Rand, n int, p float64) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		_ = g.AddNode(fmt.Sprintf("n%03d", i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				if err := g.AddEdge(fmt.Sprintf("n%03d", i), fmt.Sprintf("n%03d", j)); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

// Property: TopoSort on random DAGs yields a permutation respecting all
// edges.
func TestQuickTopoSortRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(40), 0.15)
		order, err := g.TopoSort()
		if err != nil || len(order) != g.Len() {
			return false
		}
		pos := map[string]int{}
		for i, id := range order {
			pos[id] = i
		}
		for _, id := range g.Nodes() {
			for _, s := range g.Successors(id) {
				if pos[id] >= pos[s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeatedly consuming Ready() drains any DAG completely, i.e. the
// dispatch loop of the NJS cannot deadlock on a valid job graph.
func TestQuickReadyDrainsDAG(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 1+r.Intn(30), 0.2)
		done := map[string]bool{}
		for steps := 0; steps <= g.Len(); steps++ {
			ready := g.Ready(done)
			if len(ready) == 0 {
				break
			}
			for _, id := range ready {
				done[id] = true
			}
		}
		return len(done) == g.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: an edge that would close a cycle is always rejected. Build a
// random chain and try to add a random back edge.
func TestQuickBackEdgeRejected(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		g := New()
		for i := 0; i < n; i++ {
			_ = g.AddNode(fmt.Sprintf("n%03d", i))
		}
		for i := 0; i+1 < n; i++ {
			_ = g.AddEdge(fmt.Sprintf("n%03d", i), fmt.Sprintf("n%03d", i+1))
		}
		i := r.Intn(n - 1)
		j := i + 1 + r.Intn(n-i-1)
		err := g.AddEdge(fmt.Sprintf("n%03d", j), fmt.Sprintf("n%03d", i))
		return errors.Is(err, ErrCycle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
