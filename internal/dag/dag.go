// Package dag implements the directed acyclic graphs that structure UNICORE
// jobs: an AJO contains job groups and tasks "together with their
// dependencies" (paper §4), and the NJS "makes sure that the dependent parts
// of the UNICORE job are scheduled in the predefined sequence" (§4.2).
//
// The graph is keyed by string IDs. Edges point from a predecessor to the
// successor that must wait for it.
package dag

import (
	"errors"
	"fmt"
	"sort"
)

// Common graph errors.
var (
	ErrDuplicateNode = errors.New("dag: duplicate node")
	ErrUnknownNode   = errors.New("dag: unknown node")
	ErrCycle         = errors.New("dag: dependency cycle")
	ErrSelfEdge      = errors.New("dag: self dependency")
)

// Graph is a mutable directed graph. Acyclicity is enforced on AddEdge, so a
// Graph is a DAG at every point in its life. The zero value is not usable;
// call New.
type Graph struct {
	succ map[string]map[string]bool
	pred map[string]map[string]bool
	// order remembers insertion order so traversals are deterministic.
	order []string
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		succ: make(map[string]map[string]bool),
		pred: make(map[string]map[string]bool),
	}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.order) }

// Has reports whether id is a node of the graph.
func (g *Graph) Has(id string) bool { _, ok := g.succ[id]; return ok }

// AddNode inserts a node. Adding an existing node returns ErrDuplicateNode.
func (g *Graph) AddNode(id string) error {
	if g.Has(id) {
		return fmt.Errorf("%w: %q", ErrDuplicateNode, id)
	}
	g.succ[id] = make(map[string]bool)
	g.pred[id] = make(map[string]bool)
	g.order = append(g.order, id)
	return nil
}

// AddEdge records that `to` depends on (runs after) `from`. It rejects edges
// between unknown nodes, self edges, and edges that would close a cycle.
// Duplicate edges are a silent no-op.
func (g *Graph) AddEdge(from, to string) error {
	if !g.Has(from) {
		return fmt.Errorf("%w: %q", ErrUnknownNode, from)
	}
	if !g.Has(to) {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	if from == to {
		return fmt.Errorf("%w: %q", ErrSelfEdge, from)
	}
	if g.succ[from][to] {
		return nil
	}
	if g.reaches(to, from) {
		return fmt.Errorf("%w: %q -> %q closes a cycle", ErrCycle, from, to)
	}
	g.succ[from][to] = true
	g.pred[to][from] = true
	return nil
}

// reaches reports whether dst is reachable from src.
func (g *Graph) reaches(src, dst string) bool {
	if src == dst {
		return true
	}
	seen := map[string]bool{src: true}
	stack := []string{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for m := range g.succ[n] {
			if m == dst {
				return true
			}
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

// Nodes returns all node IDs in insertion order.
func (g *Graph) Nodes() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// Successors returns the direct successors of id, sorted.
func (g *Graph) Successors(id string) []string { return sortedKeys(g.succ[id]) }

// Predecessors returns the direct predecessors of id, sorted.
func (g *Graph) Predecessors(id string) []string { return sortedKeys(g.pred[id]) }

// Roots returns the nodes with no predecessors, in insertion order.
func (g *Graph) Roots() []string {
	var out []string
	for _, id := range g.order {
		if len(g.pred[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Leaves returns the nodes with no successors, in insertion order.
func (g *Graph) Leaves() []string {
	var out []string
	for _, id := range g.order {
		if len(g.succ[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// TopoSort returns a deterministic topological order (insertion order among
// simultaneously-ready nodes). Because AddEdge preserves acyclicity the sort
// cannot fail on a Graph built through the public API, but the error is kept
// for defence in depth.
func (g *Graph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.order))
	for _, id := range g.order {
		indeg[id] = len(g.pred[id])
	}
	var frontier []string
	for _, id := range g.order {
		if indeg[id] == 0 {
			frontier = append(frontier, id)
		}
	}
	out := make([]string, 0, len(g.order))
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		out = append(out, n)
		// Visit successors in insertion order for determinism.
		for _, m := range g.order {
			if !g.succ[n][m] {
				continue
			}
			indeg[m]--
			if indeg[m] == 0 {
				frontier = append(frontier, m)
			}
		}
	}
	if len(out) != len(g.order) {
		return nil, ErrCycle
	}
	return out, nil
}

// Ready returns the nodes whose predecessors are all in done and which are
// not themselves in done, in insertion order. This is the NJS dispatch rule:
// a task becomes eligible exactly when every predecessor has completed.
func (g *Graph) Ready(done map[string]bool) []string {
	var out []string
	for _, id := range g.order {
		if done[id] {
			continue
		}
		ok := true
		for p := range g.pred[id] {
			if !done[p] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, id)
		}
	}
	return out
}

// Descendants returns every node reachable from id (excluding id), sorted.
func (g *Graph) Descendants(id string) ([]string, error) {
	if !g.Has(id) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	seen := make(map[string]bool)
	stack := []string{id}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for m := range g.succ[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return sortedKeys(seen), nil
}

// CriticalPath returns the heaviest root-to-leaf path under the given node
// weights, together with its total weight. Missing weights count as zero.
// An empty graph yields a nil path and zero weight.
func (g *Graph) CriticalPath(weight func(id string) float64) ([]string, float64) {
	order, err := g.TopoSort()
	if err != nil || len(order) == 0 {
		return nil, 0
	}
	dist := make(map[string]float64, len(order))
	prev := make(map[string]string, len(order))
	for _, id := range order {
		w := 0.0
		if weight != nil {
			w = weight(id)
		}
		best, bestFrom := 0.0, ""
		for _, p := range sortedKeys(g.pred[id]) {
			if bestFrom == "" || dist[p] > best {
				best, bestFrom = dist[p], p
			}
		}
		dist[id] = best + w
		if bestFrom != "" {
			prev[id] = bestFrom
		}
	}
	endID, endW := "", -1.0
	for _, id := range order {
		if dist[id] > endW {
			endID, endW = id, dist[id]
		}
	}
	var path []string
	for id := endID; id != ""; id = prev[id] {
		path = append(path, id)
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, endW
}

// Clone returns an independent copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, id := range g.order {
		_ = c.AddNode(id)
	}
	for _, id := range g.order {
		for m := range g.succ[id] {
			c.succ[id][m] = true
			c.pred[m][id] = true
		}
	}
	return c
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
