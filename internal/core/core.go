// Package core defines the domain vocabulary shared by every UNICORE
// component: site and job identifiers and the distinguished-name helpers
// used for user identity.
//
// Paper terminology (§4): a Usite is "a computer center offering a UNICORE
// server and execution hosts grouped in so called Vsites"; a Vsite is a set
// of systems at one Usite sharing the same data space; a user is identified
// uniquely by the distinguished name of their X.509 certificate.
package core

import (
	"fmt"
	"strings"
)

// Usite names a UNICORE site (a computer centre running a gateway + NJS).
type Usite string

// Vsite names a virtual site — an execution system (or cluster sharing one
// data space) within a Usite. Vsite names are unique within their Usite.
type Vsite string

// Target addresses a Vsite globally.
type Target struct {
	Usite Usite
	Vsite Vsite
}

// String renders a target as "USITE/VSITE".
func (t Target) String() string { return string(t.Usite) + "/" + string(t.Vsite) }

// IsZero reports whether the target is unset.
func (t Target) IsZero() bool { return t.Usite == "" && t.Vsite == "" }

// ParseTarget parses "USITE/VSITE".
func ParseTarget(s string) (Target, error) {
	u, v, ok := strings.Cut(s, "/")
	if !ok || u == "" || v == "" {
		return Target{}, fmt.Errorf("core: malformed target %q (want USITE/VSITE)", s)
	}
	return Target{Usite(u), Vsite(v)}, nil
}

// JobID identifies a consigned UNICORE job. IDs are assigned by the NJS that
// accepted the consignment and are prefixed with its Usite name, so they are
// globally unique across a deployment (e.g. "FZJ-000042").
type JobID string

// DN is an X.509 distinguished name in RFC-2253-ish rendering. In UNICORE
// the user's certificate DN is the unique UNICORE user identification
// (paper §4); the gateway maps it to a local login per Vsite.
type DN string

// MakeDN assembles a distinguished name from common name, organisation and
// country. Empty parts are omitted.
func MakeDN(cn, org, country string) DN {
	var parts []string
	if cn != "" {
		parts = append(parts, "CN="+cn)
	}
	if org != "" {
		parts = append(parts, "O="+org)
	}
	if country != "" {
		parts = append(parts, "C="+country)
	}
	return DN(strings.Join(parts, ","))
}

// CommonName extracts the CN attribute, or "" when absent.
func (d DN) CommonName() string {
	for _, part := range strings.Split(string(d), ",") {
		part = strings.TrimSpace(part)
		if rest, ok := strings.CutPrefix(part, "CN="); ok {
			return rest
		}
	}
	return ""
}

// Organisation extracts the O attribute, or "" when absent.
func (d DN) Organisation() string {
	for _, part := range strings.Split(string(d), ",") {
		part = strings.TrimSpace(part)
		if rest, ok := strings.CutPrefix(part, "O="); ok {
			return rest
		}
	}
	return ""
}
