package core

import "testing"

func TestTargetString(t *testing.T) {
	tgt := Target{Usite: "FZJ", Vsite: "T3E"}
	if got := tgt.String(); got != "FZJ/T3E" {
		t.Fatalf("String() = %q", got)
	}
}

func TestParseTarget(t *testing.T) {
	cases := []struct {
		in      string
		want    Target
		wantErr bool
	}{
		{"FZJ/T3E", Target{"FZJ", "T3E"}, false},
		{"LRZ/SP2", Target{"LRZ", "SP2"}, false},
		{"FZJ", Target{}, true},
		{"/T3E", Target{}, true},
		{"FZJ/", Target{}, true},
		{"", Target{}, true},
	}
	for _, c := range cases {
		got, err := ParseTarget(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseTarget(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("ParseTarget(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseTargetRoundTrip(t *testing.T) {
	tgt := Target{"ZIB", "SX4"}
	got, err := ParseTarget(tgt.String())
	if err != nil || got != tgt {
		t.Fatalf("round trip = %v, %v", got, err)
	}
}

func TestTargetIsZero(t *testing.T) {
	if !(Target{}).IsZero() {
		t.Fatal("zero target not IsZero")
	}
	if (Target{Usite: "FZJ"}).IsZero() {
		t.Fatal("partial target reported IsZero")
	}
}

func TestMakeDN(t *testing.T) {
	if got := MakeDN("Mathilde Romberg", "FZ Juelich", "DE"); got != "CN=Mathilde Romberg,O=FZ Juelich,C=DE" {
		t.Fatalf("MakeDN = %q", got)
	}
	if got := MakeDN("x", "", ""); got != "CN=x" {
		t.Fatalf("MakeDN sparse = %q", got)
	}
}

func TestDNAttributes(t *testing.T) {
	d := MakeDN("Alice", "RUS", "DE")
	if d.CommonName() != "Alice" {
		t.Fatalf("CommonName = %q", d.CommonName())
	}
	if d.Organisation() != "RUS" {
		t.Fatalf("Organisation = %q", d.Organisation())
	}
	if DN("O=only").CommonName() != "" {
		t.Fatal("CommonName on CN-less DN should be empty")
	}
	if DN("CN=only").Organisation() != "" {
		t.Fatal("Organisation on O-less DN should be empty")
	}
}
