// Package sim provides the time substrate for the UNICORE reproduction.
//
// Every component that needs time (the codine batch system, the NJS
// scheduler, accounting, ...) takes a Clock. Production binaries pass a
// RealClock; tests and benchmarks pass a VirtualClock, which is a
// deterministic discrete-event engine: timers fire only when the test
// advances virtual time, so a six-hour batch workload runs in microseconds
// and always produces the same trace.
package sim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock is the minimal read-only time source.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
}

// Scheduler is a Clock that can also schedule callbacks. Both RealClock and
// VirtualClock implement it.
type Scheduler interface {
	Clock
	// AfterFunc arranges for f to run once d has elapsed on this clock and
	// returns a handle that can cancel the pending call.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a handle to a pending AfterFunc callback.
type Timer interface {
	// Stop cancels the timer. It reports whether the call was stopped before
	// the callback ran.
	Stop() bool
}

// RealClock delegates to the wall clock and the runtime timer wheel.
type RealClock struct{}

// Now returns time.Now().
func (RealClock) Now() time.Time { return time.Now() }

// AfterFunc wraps time.AfterFunc.
func (RealClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

// Epoch is the default start time of a VirtualClock: an arbitrary fixed
// instant (the HPDC-8 opening day) so traces are stable across runs.
var Epoch = time.Date(1999, time.August, 3, 9, 0, 0, 0, time.UTC)

// VirtualClock is a deterministic discrete-event clock. Callbacks scheduled
// with AfterFunc fire only inside Advance, Step, or RunUntilIdle, on the
// goroutine that called them. Callbacks may schedule further callbacks.
//
// The zero value is not usable; call NewVirtualClock.
type VirtualClock struct {
	mu     sync.Mutex
	now    time.Time
	seq    int64
	events eventHeap
	firing bool
}

// NewVirtualClock returns a virtual clock positioned at Epoch.
func NewVirtualClock() *VirtualClock { return NewVirtualClockAt(Epoch) }

// NewVirtualClockAt returns a virtual clock positioned at start.
func NewVirtualClockAt(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

type event struct {
	when time.Time
	seq  int64 // tie-break: FIFO among events due at the same instant
	fn   func()
	dead bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

type virtualTimer struct {
	c  *VirtualClock
	ev *event
}

func (t virtualTimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if t.ev.dead {
		return false
	}
	t.ev.dead = true
	return true
}

// AfterFunc schedules f to run when d has elapsed on the virtual clock.
// A non-positive d schedules f for the current instant; it still only fires
// from Advance/Step/RunUntilIdle.
func (c *VirtualClock) AfterFunc(d time.Duration, f func()) Timer {
	if f == nil {
		panic("sim: AfterFunc with nil func")
	}
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ev := &event{when: c.now.Add(d), seq: c.seq, fn: f}
	c.seq++
	heap.Push(&c.events, ev)
	return virtualTimer{c, ev}
}

// Pending returns the number of live scheduled events.
func (c *VirtualClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ev := range c.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// NextEvent returns the due time of the earliest live event, and false when
// no events are pending.
func (c *VirtualClock) NextEvent() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextLiveLocked()
}

// Advance moves virtual time forward by d, firing every event that falls due
// in order, and returns the number fired. Events scheduled by callbacks for
// instants inside the window also fire.
func (c *VirtualClock) Advance(d time.Duration) int {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance by negative duration %v", d))
	}
	c.mu.Lock()
	deadline := c.now.Add(d)
	fired := c.fireUntilLocked(deadline)
	c.now = deadline
	c.mu.Unlock()
	return fired
}

// Step advances directly to the next pending event and fires every event due
// at that instant. It reports whether anything fired.
func (c *VirtualClock) Step() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	next, ok := c.nextLiveLocked()
	if !ok {
		return false
	}
	c.fireUntilLocked(next)
	if c.now.Before(next) {
		c.now = next
	}
	return true
}

// RunUntilIdle fires events (stepping time forward as needed) until no events
// remain or maxEvents have fired. It returns the number of events fired.
// maxEvents <= 0 means no limit.
func (c *VirtualClock) RunUntilIdle(maxEvents int) int {
	fired := 0
	for {
		if maxEvents > 0 && fired >= maxEvents {
			return fired
		}
		c.mu.Lock()
		next, ok := c.nextLiveLocked()
		if !ok {
			c.mu.Unlock()
			return fired
		}
		n := c.fireUntilLocked(next)
		if c.now.Before(next) {
			c.now = next
		}
		c.mu.Unlock()
		fired += n
		if n == 0 {
			return fired
		}
	}
}

func (c *VirtualClock) nextLiveLocked() (time.Time, bool) {
	for c.events.Len() > 0 {
		top := c.events[0]
		if top.dead {
			heap.Pop(&c.events)
			continue
		}
		return top.when, true
	}
	return time.Time{}, false
}

// fireUntilLocked fires all live events with when <= deadline, advancing
// c.now to each event time as it goes. Callbacks run with the lock released
// so they can schedule new events.
func (c *VirtualClock) fireUntilLocked(deadline time.Time) int {
	if c.firing {
		panic("sim: reentrant clock advancement (Advance/Step called from a timer callback)")
	}
	c.firing = true
	defer func() { c.firing = false }()
	fired := 0
	for c.events.Len() > 0 {
		top := c.events[0]
		if top.dead {
			heap.Pop(&c.events)
			continue
		}
		if top.when.After(deadline) {
			break
		}
		heap.Pop(&c.events)
		if c.now.Before(top.when) {
			c.now = top.when
		}
		fn := top.fn
		c.mu.Unlock()
		fn()
		c.mu.Lock()
		fired++
	}
	return fired
}

// Sleep is a convenience for code that wants a blocking wait on any
// Scheduler: on a RealClock it really sleeps; on a VirtualClock it panics,
// because virtual-time code must never block the driving goroutine.
func Sleep(s Scheduler, d time.Duration) {
	switch s.(type) {
	case RealClock, *RealClock:
		time.Sleep(d)
	default:
		panic("sim: Sleep on a virtual clock; restructure with AfterFunc")
	}
}
