package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualClockStartsAtEpoch(t *testing.T) {
	c := NewVirtualClock()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", c.Now(), Epoch)
	}
}

func TestAdvanceMovesTime(t *testing.T) {
	c := NewVirtualClock()
	c.Advance(90 * time.Second)
	want := Epoch.Add(90 * time.Second)
	if !c.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", c.Now(), want)
	}
}

func TestAfterFuncFiresAtDueTime(t *testing.T) {
	c := NewVirtualClock()
	var at time.Time
	c.AfterFunc(10*time.Minute, func() { at = c.Now() })
	if n := c.Advance(9 * time.Minute); n != 0 {
		t.Fatalf("fired %d events early", n)
	}
	if n := c.Advance(2 * time.Minute); n != 1 {
		t.Fatalf("Advance fired %d events, want 1", n)
	}
	want := Epoch.Add(10 * time.Minute)
	if !at.Equal(want) {
		t.Fatalf("callback observed %v, want %v", at, want)
	}
}

func TestAfterFuncOrderingFIFOAtSameInstant(t *testing.T) {
	c := NewVirtualClock()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestTimerStop(t *testing.T) {
	c := NewVirtualClock()
	fired := false
	tm := c.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	c.Advance(2 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestCallbackMaySchedule(t *testing.T) {
	c := NewVirtualClock()
	var hits []time.Duration
	var rec func()
	n := 0
	rec = func() {
		hits = append(hits, c.Now().Sub(Epoch))
		n++
		if n < 4 {
			c.AfterFunc(time.Minute, rec)
		}
	}
	c.AfterFunc(time.Minute, rec)
	c.Advance(10 * time.Minute)
	if len(hits) != 4 {
		t.Fatalf("got %d hits, want 4 (chain rescheduling)", len(hits))
	}
	for i, h := range hits {
		want := time.Duration(i+1) * time.Minute
		if h != want {
			t.Fatalf("hit %d at %v, want %v", i, h, want)
		}
	}
}

func TestStepAdvancesToNextEvent(t *testing.T) {
	c := NewVirtualClock()
	c.AfterFunc(3*time.Hour, func() {})
	if !c.Step() {
		t.Fatal("Step found no event")
	}
	if got := c.Now().Sub(Epoch); got != 3*time.Hour {
		t.Fatalf("Now advanced by %v, want 3h", got)
	}
	if c.Step() {
		t.Fatal("Step fired with empty queue")
	}
}

func TestRunUntilIdle(t *testing.T) {
	c := NewVirtualClock()
	total := 0
	for i := 1; i <= 10; i++ {
		c.AfterFunc(time.Duration(i)*time.Second, func() { total++ })
	}
	fired := c.RunUntilIdle(0)
	if fired != 10 || total != 10 {
		t.Fatalf("fired=%d total=%d, want 10/10", fired, total)
	}
	if c.Pending() != 0 {
		t.Fatalf("%d events left pending", c.Pending())
	}
}

func TestRunUntilIdleRespectsLimit(t *testing.T) {
	c := NewVirtualClock()
	for i := 1; i <= 10; i++ {
		c.AfterFunc(time.Duration(i)*time.Second, func() {})
	}
	if fired := c.RunUntilIdle(3); fired < 3 {
		t.Fatalf("fired %d, want >= 3", fired)
	}
}

func TestNegativeDelayFiresImmediatelyOnAdvance(t *testing.T) {
	c := NewVirtualClock()
	fired := false
	c.AfterFunc(-5*time.Second, func() { fired = true })
	c.Advance(0)
	if !fired {
		t.Fatal("negative-delay event did not fire on Advance(0)")
	}
}

func TestRealClockAfterFunc(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1)
	RealClock{}.AfterFunc(time.Millisecond, wg.Done)
	wg.Wait() // test deadlocks (and times out) on failure
}

// Property: after Advance(sum of parts) every event scheduled within the
// window has fired, regardless of how the window is split.
func TestQuickAdvanceSplitEquivalence(t *testing.T) {
	f := func(delays []uint16, splits []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 50 {
			delays = delays[:50]
		}
		c := NewVirtualClock()
		fired := make(map[int]bool)
		var window time.Duration
		for _, s := range splits {
			window += time.Duration(s) * time.Millisecond
		}
		expect := 0
		for i, d := range delays {
			i := i
			dd := time.Duration(d) * time.Millisecond
			c.AfterFunc(dd, func() { fired[i] = true })
			if dd <= window {
				expect++
			}
		}
		for _, s := range splits {
			c.Advance(time.Duration(s) * time.Millisecond)
		}
		return len(fired) == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: events fire in nondecreasing time order.
func TestQuickMonotoneFiringOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		c := NewVirtualClock()
		var seen []time.Time
		for _, d := range delays {
			c.AfterFunc(time.Duration(d)*time.Millisecond, func() {
				seen = append(seen, c.Now())
			})
		}
		c.RunUntilIdle(0)
		for i := 1; i < len(seen); i++ {
			if seen[i].Before(seen[i-1]) {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
