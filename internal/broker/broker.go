// Package broker implements the resource broker the paper lists as the key
// future enhancement (§6): "a resource broker which supports the users in a
// way that they can specify the needed resources on a more abstract level
// and the broker finds the appropriate execution server for it. Together
// with accounting functions and load information the resource broker can
// find the best system for an application with given time constraints."
//
// The broker combines three inputs, all available in the reproduced system:
// the Vsites' resource pages (capability filter, §5.4), live load queries
// answered by each gateway, and the performance figures the pages carry.
package broker

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/protocol"
	"unicore/internal/resources"
)

// ErrNoCandidate reports that no known Vsite satisfies a request.
var ErrNoCandidate = errors.New("broker: no Vsite satisfies the request")

// Policy selects the ranking strategy.
type Policy int

const (
	// LeastLoaded picks the Vsite with the smallest occupancy and backlog.
	LeastLoaded Policy = iota
	// FastestMachine picks the Vsite with the highest aggregate peak
	// performance among those that satisfy the request.
	FastestMachine
	// BestTurnaround estimates wait + run time per Vsite and picks the
	// minimum — the "best system for an application with given time
	// constraints" of §6.
	BestTurnaround
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LeastLoaded:
		return "least-loaded"
	case FastestMachine:
		return "fastest-machine"
	case BestTurnaround:
		return "best-turnaround"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Load is one Vsite's live occupancy as reported by its gateway, including
// the replica-pool health behind it (package pool): Replicas/Healthy let the
// ranking skip a drained Vsite — one whose pool has no healthy NJS replica
// left — and weight backlog by the capacity that actually survives. A report
// with Replicas == 0 predates pooling and is read as a single healthy NJS.
type Load struct {
	Load     float64 // fraction of batch slots in use, [0,1]
	Pending  int     // jobs waiting in the queues
	Inflight int     // consigns being admitted right now (live telemetry gauge)
	Replicas int     // NJS replicas serving this Vsite (0 = unknown, assume 1)
	Healthy  int     // replicas currently healthy
}

// Drained reports whether the Vsite's replica pool has no healthy replica
// left. Legacy reports (Replicas == 0) are never considered drained.
func (l Load) Drained() bool { return l.Replicas > 0 && l.Healthy == 0 }

// healthyFraction is the surviving share of the Vsite's capacity.
func (l Load) healthyFraction() float64 {
	if l.Replicas <= 0 {
		return 1
	}
	return float64(l.Healthy) / float64(l.Replicas)
}

// Candidate is one ranked placement option.
type Candidate struct {
	Target core.Target
	Score  float64 // lower is better
	Load   Load
	// EstWait and EstRun are only filled by BestTurnaround.
	EstWait time.Duration
	EstRun  time.Duration
}

// loadEntry is one recorded load report plus the bookkeeping that lets the
// broker expire it: the refresh epoch that produced it and the local receipt
// time. Without these, a removed or renamed Vsite's last report competes in
// Candidates forever.
type loadEntry struct {
	l     Load
	epoch uint64
	seen  time.Time
}

// Broker ranks Vsites for abstract resource requests.
type Broker struct {
	mu       sync.Mutex
	catalog  *resources.Catalog
	loads    map[core.Target]loadEntry
	policy   Policy
	epoch    uint64                 // bumps at every Refresh round
	ttl      time.Duration          // 0 = load reports never expire
	now      func() time.Time       // nil = wall clock
	siteCost map[core.Usite]float64 // additive placement cost per Usite
}

// New creates a broker with the given policy.
func New(policy Policy) *Broker {
	return &Broker{
		catalog:  resources.NewCatalog(),
		loads:    make(map[core.Target]loadEntry),
		policy:   policy,
		siteCost: make(map[core.Usite]float64),
	}
}

// Policy returns the ranking policy.
func (b *Broker) Policy() Policy { return b.policy }

// AddPage registers a Vsite's resource page.
func (b *Broker) AddPage(p *resources.Page) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.catalog.Add(p)
}

// RemoveTarget forgets a Vsite entirely: its resource page and any load
// report. Used when a refresh or a federation advertisement shows the Vsite
// is gone.
func (b *Broker) RemoveTarget(t core.Target) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.catalog.Remove(t)
	delete(b.loads, t)
}

// SetLoad records a Vsite's live load, stamped with the current epoch and
// receipt time.
func (b *Broker) SetLoad(t core.Target, l Load) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.loads[t] = loadEntry{l: l, epoch: b.epoch, seen: b.clock()}
}

// SetStale arms load-report expiry: a target whose newest load report is
// older than ttl stops competing in Candidates until a fresh report arrives.
// now overrides the clock (tests, sim time); nil means wall clock. A zero
// ttl disables expiry — the default, preserving the behaviour of brokers
// that load their figures once.
func (b *Broker) SetStale(ttl time.Duration, now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ttl = ttl
	b.now = now
}

// SetSiteCost biases placement away from a Usite by adding cost to every
// score its Vsites earn, in policy-native units: one unit is a whole
// machine of occupancy under LeastLoaded, one reference processor of peak
// under FastestMachine, and one hour of turnaround under BestTurnaround.
// The federation layer uses this to charge for hop distance and accounting
// usage; a zero cost removes the bias.
func (b *Broker) SetSiteCost(u core.Usite, cost float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if cost == 0 {
		delete(b.siteCost, u)
		return
	}
	b.siteCost[u] = cost
}

func (b *Broker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

// stale reports whether a load entry has outlived the broker's ttl.
// Callers hold b.mu.
func (b *Broker) stale(e loadEntry) bool {
	return b.ttl > 0 && b.clock().Sub(e.seen) > b.ttl
}

// Refresh pulls resource pages and load figures from each Usite's gateway.
// Unreachable Usites don't abort the round: every reachable site is
// refreshed and the per-site failures come back joined. A site that
// refreshes cleanly has its stale state evicted — Vsites it no longer
// reports stop competing in Candidates.
func (b *Broker) Refresh(c *protocol.Client, usites ...core.Usite) error {
	b.mu.Lock()
	b.epoch++
	b.mu.Unlock()
	var errs []error
	for _, u := range usites {
		fresh, err := b.refreshSite(c, u)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		b.evictStaleSite(u, fresh)
	}
	return errors.Join(errs...)
}

// refreshSite pulls one Usite's pages and loads, returning the set of
// targets the gateway still reports.
func (b *Broker) refreshSite(c *protocol.Client, u core.Usite) (map[core.Target]bool, error) {
	var pages protocol.ResourcesReply
	if err := c.Call(context.Background(), u, protocol.MsgResources, protocol.ResourcesRequest{}, &pages); err != nil {
		return nil, fmt.Errorf("broker: resources from %s: %w", u, err)
	}
	fresh := make(map[core.Target]bool)
	for _, der := range pages.PagesDER {
		p, err := resources.UnmarshalASN1(der)
		if err != nil {
			return nil, fmt.Errorf("broker: page from %s: %w", u, err)
		}
		b.AddPage(p)
		fresh[p.Target] = true
	}
	var load protocol.LoadReply
	if err := c.Call(context.Background(), u, protocol.MsgLoad, protocol.LoadRequest{}, &load); err != nil {
		return nil, fmt.Errorf("broker: load from %s: %w", u, err)
	}
	for vs, vl := range load.Vsites {
		t := core.Target{Usite: u, Vsite: core.Vsite(vs)}
		fresh[t] = true
		b.SetLoad(t, Load{
			Load: vl.Load, Pending: vl.Pending, Inflight: vl.Inflight,
			Replicas: vl.Replicas, Healthy: vl.Healthy,
		})
	}
	return fresh, nil
}

// evictStaleSite drops every record at Usite u that this refresh round did
// not renew: the gateway answered authoritatively, so anything it no longer
// reports — a removed or renamed Vsite — is gone, page and load both.
func (b *Broker) evictStaleSite(u core.Usite, fresh map[core.Target]bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, t := range b.catalog.Targets() {
		if t.Usite == u && !fresh[t] {
			b.catalog.Remove(t)
			delete(b.loads, t)
		}
	}
	for t := range b.loads {
		if t.Usite == u && !fresh[t] {
			delete(b.loads, t)
		}
	}
}

// Candidates ranks every known Vsite that satisfies the request, best
// first. software lists additional requirements (e.g. an f90 compiler).
func (b *Broker) Candidates(req resources.Request, software ...resources.Software) ([]Candidate, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Candidate
	for _, t := range b.catalog.Targets() {
		page, _ := b.catalog.Get(t)
		if err := page.Check(req); err != nil {
			continue
		}
		ok := true
		for _, sw := range software {
			if !page.HasSoftware(sw.Kind, sw.Name, sw.Version) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		e, reported := b.loads[t]
		if reported && b.stale(e) {
			// The load report outlived the staleness window: whoever fed
			// this broker stopped renewing the Vsite, so for all we know it
			// was removed or its site is unreachable. It stops competing
			// until a fresh report arrives.
			continue
		}
		if e.l.Drained() {
			// Every NJS replica behind the Vsite is failing its health
			// check: the capability is nominally there, but nothing can take
			// responsibility for a job right now. Selecting it would trade
			// the §6 "best system" promise for a consign error.
			continue
		}
		c := Candidate{Target: t, Load: e.l}
		b.score(&c, page, req)
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoCandidate, req)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].Target.String() < out[j].Target.String()
	})
	return out, nil
}

// Choose returns the best placement for the request.
func (b *Broker) Choose(req resources.Request, software ...resources.Software) (core.Target, error) {
	cands, err := b.Candidates(req, software...)
	if err != nil {
		return core.Target{}, err
	}
	return cands[0].Target, nil
}

// referenceMFlops normalises machine speed: the T3E's 600 MFlops/PE is the
// deployment's reference point.
const referenceMFlops = 600.0

// score fills Candidate.Score under the broker's policy. Lower is better.
// Backlog pressure is normalised by the capacity that is actually healthy:
// a half-drained replica pool queues twice as deep per surviving slot.
func (b *Broker) score(c *Candidate, page *resources.Page, req resources.Request) {
	slots := page.Processors.Max
	if slots < 1 {
		slots = 1
	}
	effSlots := float64(slots) * c.Load.healthyFraction()
	if effSlots < 1 {
		effSlots = 1
	}
	switch b.policy {
	case LeastLoaded:
		// Occupancy plus backlog pressure, normalised by machine size.
		// Inflight consigns — the live telemetry gauge a scrape carries —
		// count as queued work that the Pending figure hasn't absorbed yet,
		// so a Vsite being hammered with admissions ranks below an idle one
		// even before its queues reflect the burst.
		c.Score = c.Load.Load + float64(c.Load.Pending+c.Load.Inflight)/effSlots
	case FastestMachine:
		// Negative aggregate peak: the biggest machine wins regardless of
		// load (the user-visible behaviour of "give me the fast one").
		c.Score = -float64(page.PerfMFlops) * float64(slots)
	case BestTurnaround:
		// A deliberately simple queueing estimate: each pending job holds
		// the requested share of the machine for about the requested run
		// time, and the run itself scales inversely with per-PE speed.
		run := req.RunTime
		if run == 0 {
			run = time.Duration(page.RunTimeSec.Default) * time.Second
		}
		procs := req.Processors
		if procs == 0 {
			procs = page.Processors.Default
		}
		occupancy := c.Load.Load + float64((c.Load.Pending+c.Load.Inflight)*procs)/effSlots
		wait := time.Duration(occupancy * float64(run))
		perf := float64(page.PerfMFlops)
		if perf <= 0 {
			perf = referenceMFlops
		}
		est := time.Duration(float64(run) * referenceMFlops / perf)
		c.EstWait = wait
		c.EstRun = est
		c.Score = (wait + est).Seconds()
	}
	if cost := b.siteCost[c.Target.Usite]; cost != 0 {
		c.Score += cost * b.costUnit(page)
	}
}

// costUnit converts one abstract unit of site cost into the running
// policy's score scale (see SetSiteCost).
func (b *Broker) costUnit(page *resources.Page) float64 {
	switch b.policy {
	case FastestMachine:
		return referenceMFlops
	case BestTurnaround:
		return time.Hour.Seconds()
	default: // LeastLoaded
		return 1
	}
}

// Retarget rewrites a job's destination to the chosen target. Nested job
// groups keep their own explicit destinations — the broker only places the
// top-level job, matching the §6 sketch.
func Retarget(job *ajo.AbstractJob, t core.Target) {
	job.Target = t
}
