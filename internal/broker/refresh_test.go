package broker_test

// End-to-end coverage for Refresh's partial-failure contract: one
// unreachable Usite must not starve the reachable rest of their refresh.

import (
	"strings"
	"testing"
	"time"

	"unicore/internal/broker"
	"unicore/internal/core"
	"unicore/internal/machine"
	"unicore/internal/njs"
	"unicore/internal/resources"
	"unicore/internal/testbed"
)

func TestRefreshContinuesPastUnreachableSite(t *testing.T) {
	d, err := testbed.New(
		testbed.SiteSpec{Usite: "FZJ", Vsites: []njs.VsiteConfig{{Name: "T3E", Profile: machine.CrayT3E(512)}}},
		testbed.SiteSpec{Usite: "DWD", Vsites: []njs.VsiteConfig{{Name: "SX4", Profile: machine.NECSX4(16)}}},
	)
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Broker User", "Org", "bu")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	// A third Usite is registered but nothing serves its host: every call to
	// it fails at the transport.
	d.Registry.Add("GHOST", "https://gw.ghost.unicore")

	b := broker.New(broker.LeastLoaded)
	err = b.Refresh(d.UserClient(user), "FZJ", "GHOST", "DWD")
	if err == nil {
		t.Fatal("Refresh returned nil error with an unreachable Usite in the round")
	}
	if !strings.Contains(err.Error(), "GHOST") {
		t.Fatalf("joined error does not name the unreachable site: %v", err)
	}
	// Both reachable sites were refreshed despite the mid-round failure.
	cands, err := b.Candidates(resources.Request{Processors: 8, RunTime: time.Hour})
	if err != nil {
		t.Fatalf("Candidates after partial refresh: %v", err)
	}
	want := map[core.Target]bool{
		{Usite: "FZJ", Vsite: "T3E"}: true,
		{Usite: "DWD", Vsite: "SX4"}: true,
	}
	for _, c := range cands {
		delete(want, c.Target)
	}
	if len(want) != 0 {
		t.Fatalf("reachable sites missing after partial refresh: %v", want)
	}
}
