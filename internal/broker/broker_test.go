package broker

import (
	"errors"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/machine"
	"unicore/internal/resources"
)

var (
	fzjT3E = core.Target{Usite: "FZJ", Vsite: "T3E"}
	lrzVPP = core.Target{Usite: "LRZ", Vsite: "VPP"}
	dwdSX4 = core.Target{Usite: "DWD", Vsite: "SX4"}
)

// inventory builds a broker stocked with the three-machine test inventory.
func inventory(p Policy) *Broker {
	b := New(p)
	t3e := machine.CrayT3E(512).ResourcePage()
	t3e.Target = fzjT3E
	vpp := machine.FujitsuVPP700(52).ResourcePage()
	vpp.Target = lrzVPP
	sx4 := machine.NECSX4(16).ResourcePage()
	sx4.Target = dwdSX4
	b.AddPage(&t3e)
	b.AddPage(&vpp)
	b.AddPage(&sx4)
	return b
}

func TestCapabilityFilter(t *testing.T) {
	b := inventory(LeastLoaded)
	// 100 processors only fit the T3E (512); VPP has 52, SX4 has 16.
	got, err := b.Choose(resources.Request{Processors: 100, RunTime: time.Hour})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if got != fzjT3E {
		t.Fatalf("choice = %s, want %s", got, fzjT3E)
	}
	// 4096 processors fit nowhere.
	_, err = b.Choose(resources.Request{Processors: 4096, RunTime: time.Hour})
	if !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("err = %v, want ErrNoCandidate", err)
	}
}

func TestSoftwareFilter(t *testing.T) {
	b := inventory(LeastLoaded)
	// Every profile lists f90; none lists Gaussian.
	if _, err := b.Choose(resources.Request{Processors: 1, RunTime: time.Hour},
		resources.Software{Kind: resources.KindCompiler, Name: "f90"}); err != nil {
		t.Fatalf("f90 filter: %v", err)
	}
	_, err := b.Choose(resources.Request{Processors: 1, RunTime: time.Hour},
		resources.Software{Kind: resources.KindPackage, Name: "Gaussian94"})
	if !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("err = %v, want ErrNoCandidate", err)
	}
}

func TestLeastLoadedPrefersIdleSite(t *testing.T) {
	b := inventory(LeastLoaded)
	b.SetLoad(fzjT3E, Load{Load: 0.9, Pending: 40})
	b.SetLoad(lrzVPP, Load{Load: 0.1})
	b.SetLoad(dwdSX4, Load{Load: 0.5})
	got, err := b.Choose(resources.Request{Processors: 8, RunTime: time.Hour})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if got != lrzVPP {
		t.Fatalf("choice = %s, want the idle VPP", got)
	}
}

// TestInflightConsignsCountAsLoad: a Vsite with idle queues but a burst of
// admissions in flight (the live njs_consign_inflight gauge a telemetry
// scrape carries into LoadReply) ranks below a genuinely idle one — the
// broker sees the burst before the batch queues do.
func TestInflightConsignsCountAsLoad(t *testing.T) {
	b := inventory(LeastLoaded)
	// Both SX4-sized sites report empty queues and identical occupancy, but
	// the SX4 is absorbing an admission burst right now.
	b.SetLoad(fzjT3E, Load{Load: 0.9, Pending: 40})
	b.SetLoad(lrzVPP, Load{Load: 0.1})
	b.SetLoad(dwdSX4, Load{Load: 0.1, Inflight: 30})
	got, err := b.Choose(resources.Request{Processors: 8, RunTime: time.Hour})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if got != lrzVPP {
		t.Fatalf("choice = %s, want the idle VPP over the consign-loaded SX4", got)
	}
	// The loaded-but-healthy SX4 is still a candidate, just ranked lower.
	cands, err := b.Candidates(resources.Request{Processors: 8, RunTime: time.Hour})
	if err != nil {
		t.Fatalf("Candidates: %v", err)
	}
	var vppScore, sx4Score float64
	for _, c := range cands {
		switch c.Target {
		case lrzVPP:
			vppScore = c.Score
		case dwdSX4:
			sx4Score = c.Score
		}
	}
	if !(vppScore < sx4Score) {
		t.Fatalf("idle VPP score %v not below in-flight-loaded SX4 score %v", vppScore, sx4Score)
	}
}

func TestFastestMachineIgnoresLoad(t *testing.T) {
	b := inventory(FastestMachine)
	b.SetLoad(fzjT3E, Load{Load: 1, Pending: 100})
	b.SetLoad(lrzVPP, Load{Load: 0})
	got, err := b.Choose(resources.Request{Processors: 8, RunTime: time.Hour})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	// Aggregate peak: T3E 512*600, VPP 52*2200, SX4 16*2000 — T3E wins.
	if got != fzjT3E {
		t.Fatalf("choice = %s, want the T3E", got)
	}
}

func TestBestTurnaroundBalancesWaitAndSpeed(t *testing.T) {
	b := inventory(BestTurnaround)
	// The T3E is saturated with a deep backlog; the slower SX4 is empty.
	b.SetLoad(fzjT3E, Load{Load: 1, Pending: 64})
	b.SetLoad(lrzVPP, Load{Load: 1, Pending: 64})
	b.SetLoad(dwdSX4, Load{})
	got, err := b.Choose(resources.Request{Processors: 8, RunTime: time.Hour})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if got != dwdSX4 {
		t.Fatalf("choice = %s, want the idle SX4", got)
	}

	cands, err := b.Candidates(resources.Request{Processors: 8, RunTime: time.Hour})
	if err != nil {
		t.Fatalf("Candidates: %v", err)
	}
	if cands[0].Target != dwdSX4 {
		t.Fatalf("best candidate = %s", cands[0].Target)
	}
	if cands[0].EstWait != 0 {
		t.Fatalf("idle site estimated wait = %s, want 0", cands[0].EstWait)
	}
	for _, c := range cands[1:] {
		if c.EstWait == 0 {
			t.Fatalf("saturated site %s has zero estimated wait", c.Target)
		}
	}
}

func TestCandidatesSortedAndDeterministic(t *testing.T) {
	b := inventory(LeastLoaded)
	cands, err := b.Candidates(resources.Request{Processors: 1, RunTime: time.Hour})
	if err != nil {
		t.Fatalf("Candidates: %v", err)
	}
	if len(cands) != 3 {
		t.Fatalf("candidates = %d, want 3", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Score > cands[i].Score {
			t.Fatalf("candidates not sorted: %v", cands)
		}
	}
	// Equal loads: ties break lexicographically by target, so repeated
	// calls give the same order.
	again, _ := b.Candidates(resources.Request{Processors: 1, RunTime: time.Hour})
	for i := range cands {
		if cands[i].Target != again[i].Target {
			t.Fatal("candidate order is not deterministic")
		}
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		LeastLoaded:    "least-loaded",
		FastestMachine: "fastest-machine",
		BestTurnaround: "best-turnaround",
		Policy(42):     "Policy(42)",
	} {
		if got := p.String(); got != want {
			t.Fatalf("Policy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestRetarget(t *testing.T) {
	b := inventory(LeastLoaded)
	tgt, err := b.Choose(resources.Request{Processors: 1, RunTime: time.Hour})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	job := &ajo.AbstractJob{
		Header: ajo.Header{ActionID: "j", ActionName: "retargeted"},
		Target: core.Target{Usite: "X", Vsite: "Y"},
	}
	Retarget(job, tgt)
	if job.Target != tgt {
		t.Fatalf("target = %s, want %s", job.Target, tgt)
	}
}

func TestZeroRequestUsesPageDefaults(t *testing.T) {
	b := inventory(BestTurnaround)
	b.SetLoad(fzjT3E, Load{Load: 0.5, Pending: 4})
	cands, err := b.Candidates(resources.Request{})
	if err != nil {
		t.Fatalf("Candidates: %v", err)
	}
	for _, c := range cands {
		if c.EstRun <= 0 {
			t.Fatalf("candidate %s has no estimated run time", c.Target)
		}
	}
}

func TestDrainedSiteIsNeverSelected(t *testing.T) {
	b := inventory(LeastLoaded)
	// The idle VPP would win on load alone, but its replica pool is fully
	// drained — every NJS replica is failing health checks — so the broker
	// must not select it.
	b.SetLoad(lrzVPP, Load{Load: 0.1, Replicas: 3, Healthy: 0})
	b.SetLoad(dwdSX4, Load{Load: 0.5, Replicas: 3, Healthy: 3})
	b.SetLoad(fzjT3E, Load{Load: 0.9, Pending: 40, Replicas: 1, Healthy: 1})
	got, err := b.Choose(resources.Request{Processors: 8, RunTime: time.Hour})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if got == lrzVPP {
		t.Fatalf("broker selected the drained site %s", got)
	}
	if got != dwdSX4 {
		t.Fatalf("choice = %s, want the healthy SX4", got)
	}
	// A drained-only inventory yields a clean no-candidate error.
	b.SetLoad(dwdSX4, Load{Replicas: 2, Healthy: 0})
	b.SetLoad(fzjT3E, Load{Replicas: 2, Healthy: 0})
	if _, err := b.Choose(resources.Request{Processors: 8, RunTime: time.Hour}); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("err = %v, want ErrNoCandidate when every pool is drained", err)
	}
}

// TestStaleLoadReportExpires is the regression test for the load-eviction
// bug: SetLoad entries used to live forever, so a Vsite whose site stopped
// reporting (removed, renamed, unreachable) kept competing in Candidates on
// its last figures. With a staleness window armed, an expired report takes
// the Vsite out of contention until a fresh one arrives.
func TestStaleLoadReportExpires(t *testing.T) {
	now := time.Unix(933638400, 0) // the virtual epoch, 1999-08-03
	b := inventory(LeastLoaded)
	b.SetStale(time.Minute, func() time.Time { return now })
	b.SetLoad(fzjT3E, Load{Load: 0.9})
	b.SetLoad(lrzVPP, Load{Load: 0.1})
	b.SetLoad(dwdSX4, Load{Load: 0.5})
	cands, err := b.Candidates(resources.Request{Processors: 8, RunTime: time.Hour})
	if err != nil {
		t.Fatalf("Candidates: %v", err)
	}
	if len(cands) != 3 {
		t.Fatalf("fresh reports: %d candidates, want 3", len(cands))
	}
	// Every report outlives the window: nothing is placeable.
	now = now.Add(2 * time.Minute)
	if _, err := b.Candidates(resources.Request{Processors: 8, RunTime: time.Hour}); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("err = %v, want ErrNoCandidate once every load report expired", err)
	}
	// One renewed report brings exactly that Vsite back.
	b.SetLoad(lrzVPP, Load{Load: 0.1})
	cands, err = b.Candidates(resources.Request{Processors: 8, RunTime: time.Hour})
	if err != nil {
		t.Fatalf("Candidates after renewal: %v", err)
	}
	if len(cands) != 1 || cands[0].Target != lrzVPP {
		t.Fatalf("candidates after renewal = %v, want only %s", cands, lrzVPP)
	}
}

// TestRemovedVsiteEvictedAfterRefresh drives the eviction pass a clean
// per-site refresh runs: a Vsite the gateway no longer reports loses both
// its resource page and its load record, instead of competing forever.
func TestRemovedVsiteEvictedAfterRefresh(t *testing.T) {
	b := inventory(LeastLoaded)
	b.SetLoad(lrzVPP, Load{Load: 0.0}) // the would-be winner
	b.evictStaleSite("LRZ", nil)       // LRZ answered and reports nothing
	cands, err := b.Candidates(resources.Request{Processors: 8, RunTime: time.Hour})
	if err != nil {
		t.Fatalf("Candidates: %v", err)
	}
	for _, c := range cands {
		if c.Target == lrzVPP {
			t.Fatalf("removed Vsite %s still competing", lrzVPP)
		}
	}
	if len(cands) != 2 {
		t.Fatalf("candidates = %v, want the two surviving sites", cands)
	}
}

// TestSiteCostBiasesPlacement: an idle Vsite at a cost-laden Usite loses to
// a busier free one — the federation layer's hop/charge weighting lever.
func TestSiteCostBiasesPlacement(t *testing.T) {
	b := inventory(LeastLoaded)
	b.SetLoad(fzjT3E, Load{Load: 0.9, Pending: 40})
	b.SetLoad(lrzVPP, Load{Load: 0.1})
	b.SetLoad(dwdSX4, Load{Load: 0.5})
	b.SetSiteCost("LRZ", 2) // two machines' worth of occupancy penalty
	got, err := b.Choose(resources.Request{Processors: 8, RunTime: time.Hour})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if got == lrzVPP {
		t.Fatal("cost-laden site still chosen")
	}
	if got != dwdSX4 {
		t.Fatalf("choice = %s, want the cheaper SX4", got)
	}
	// Clearing the cost restores the idle site's win.
	b.SetSiteCost("LRZ", 0)
	if got, _ := b.Choose(resources.Request{Processors: 8, RunTime: time.Hour}); got != lrzVPP {
		t.Fatalf("choice after clearing cost = %s, want %s", got, lrzVPP)
	}
}

func TestPartiallyDrainedPoolWeighsBacklogHarder(t *testing.T) {
	score := func(healthy int) float64 {
		b := inventory(LeastLoaded)
		b.SetLoad(fzjT3E, Load{Load: 0.4, Pending: 64, Replicas: 4, Healthy: healthy})
		cands, err := b.Candidates(resources.Request{Processors: 8, RunTime: time.Hour})
		if err != nil {
			t.Fatalf("Candidates: %v", err)
		}
		for _, c := range cands {
			if c.Target == fzjT3E {
				return c.Score
			}
		}
		t.Fatalf("FZJ missing from candidates")
		return 0
	}
	// The same queue depth presses four times as hard on a pool that has
	// lost 3 of its 4 replicas: the backlog is carried by a quarter of the
	// capacity, so the degraded pool must score strictly worse.
	intact, degraded := score(4), score(1)
	if degraded <= intact {
		t.Fatalf("degraded pool scored %.3f, intact %.3f; want degraded > intact", degraded, intact)
	}
}
