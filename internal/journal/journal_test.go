package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func entryN(i int) Entry {
	return Entry{Kind: KindActionDone, Action: &ActionEvent{
		Job:      fmt.Sprintf("SITE-%06d", i),
		Action:   "run",
		Status:   4,
		Stdout:   []byte("done\n"),
		Files:    []FileStat{{Path: "result.dat", Size: 1024, CRC: 42}},
		Started:  time.Unix(100, 0).UTC(),
		Finished: time.Unix(200, 0).UTC(),
	}}
}

func collect(t *testing.T, s *Store) []Entry {
	t.Helper()
	var out []Entry
	if err := s.Replay(func(e Entry) error { out = append(out, e); return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		s.Append(entryN(i))
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	got := collect(t, s)
	if len(got) != n {
		t.Fatalf("replayed %d entries, want %d", len(got), n)
	}
	for i, e := range got {
		if e.Kind != KindActionDone || e.Action == nil {
			t.Fatalf("entry %d: kind %s", i, e.Kind)
		}
		if want := fmt.Sprintf("SITE-%06d", i); e.Action.Job != want {
			t.Fatalf("entry %d: job %q, want %q (order lost)", i, e.Action.Job, want)
		}
		if string(e.Action.Stdout) != "done\n" || len(e.Action.Files) != 1 || e.Action.Files[0].CRC != 42 {
			t.Fatalf("entry %d: payload mangled: %+v", i, e.Action)
		}
		if !e.Action.Started.Equal(time.Unix(100, 0).UTC()) {
			t.Fatalf("entry %d: started %v", i, e.Action.Started)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A fresh Store over the same dir replays the same stream.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := collect(t, s2); len(got) != n {
		t.Fatalf("after reopen: %d entries, want %d", len(got), n)
	}
}

func TestAllEntryKindsRoundTrip(t *testing.T) {
	entries := []Entry{
		{Kind: KindFileWrite, File: &FileMutation{Vsite: "T3E", Path: "/uspace/J-1/in.dat", Data: []byte{1, 2, 3}}},
		{Kind: KindFileRemove, File: &FileMutation{Vsite: "T3E", Path: "/uspace/J-1/tmp"}},
		{Kind: KindMkdir, File: &FileMutation{Vsite: "T3E", Path: "/uspace/J-1/sub"}},
		{Kind: KindRename, File: &FileMutation{Vsite: "T3E", Path: "/uspace/J-1/a", To: "/uspace/J-1/b"}},
		{Kind: KindAdmit, Admit: &Admission{
			Job: "FZJ-000001", Owner: "CN=U,O=Org", UID: "u1", Groups: []string{"unicore"},
			Project: "hpc", Vsite: "T3E", AJO: []byte("gob"), ConsignID: "c1",
			ParentJob: "FZJ-000000", ParentAction: "sub", Submitted: time.Unix(7, 0).UTC(),
		}},
		{Kind: KindActionStart, Action: &ActionEvent{Job: "FZJ-000001", Action: "run", Status: 2}},
		entryN(1),
		{Kind: KindInject, Inject: &Injection{Job: "FZJ-000001", After: "sub", Name: "dep.dat", Data: []byte("x")}},
		{Kind: KindRemote, Remote: &RemoteLink{Job: "FZJ-000001", Action: "sub", Usite: "ZIB", RemoteJob: "ZIB-000004"}},
		{Kind: KindControl, Control: &ControlEvent{Job: "FZJ-000001", Op: "hold"}},
		{Kind: KindRootDone, Root: &RootEvent{Job: "FZJ-000001", Status: 4, Finished: time.Unix(9, 0).UTC()}},
		{Kind: KindSeq, Seq: 17},
	}
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	for _, e := range entries {
		s.Append(e)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	got := collect(t, s)
	if len(got) != len(entries) {
		t.Fatalf("replayed %d, want %d", len(got), len(entries))
	}
	for i, e := range got {
		if e.Kind != entries[i].Kind {
			t.Fatalf("entry %d: kind %s, want %s", i, e.Kind, entries[i].Kind)
		}
	}
	adm := got[4].Admit
	if adm == nil || adm.ConsignID != "c1" || adm.ParentAction != "sub" || len(adm.Groups) != 1 {
		t.Fatalf("admission mangled: %+v", adm)
	}
	if got[11].Seq != 17 {
		t.Fatalf("seq = %d", got[11].Seq)
	}
}

func TestTornTailIsDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		s.Append(entryN(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the final record: chop a few bytes off the journal file.
	path := filepath.Join(dir, journalName(0))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got := collect(t, s2)
	if len(got) != 9 {
		t.Fatalf("replayed %d entries after torn tail, want 9", len(got))
	}
}

// TestReopenAfterTornTailKeepsNewEntries is the regression for appending
// behind a torn frame: Open must truncate the garbage so entries written by
// the recovered process are reachable on the NEXT replay, not stranded
// behind it.
func TestReopenAfterTornTailKeepsNewEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.Append(entryN(0))
	s.Append(entryN(1))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, journalName(0))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil { // tear entry 1
		t.Fatalf("Truncate: %v", err)
	}

	// First restart: replays entry 0, then journals new work.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen 1: %v", err)
	}
	if got := collect(t, s2); len(got) != 1 {
		t.Fatalf("after tear: %d entries, want 1", len(got))
	}
	s2.Append(entryN(2))
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Second restart: the new entry must not be stranded behind the old
	// torn frame.
	s3, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen 2: %v", err)
	}
	defer s3.Close()
	got := collect(t, s3)
	if len(got) != 2 {
		t.Fatalf("after reopen: %d entries, want 2 (entry appended post-recovery was lost)", len(got))
	}
	if got[1].Action.Job != "SITE-000002" {
		t.Fatalf("second entry = %s, want SITE-000002", got[1].Action.Job)
	}
}

func TestCorruptMidStreamIsAnError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		s.Append(entryN(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Flip a payload byte in the middle of the file. The reader sees a CRC
	// mismatch before the tail: with tail tolerance it stops there (data
	// after the flip is unreachable), which must lose entries, not invent
	// them.
	path := filepath.Join(dir, journalName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got := collect(t, s2)
	if len(got) >= 10 {
		t.Fatalf("replayed %d entries from corrupted journal", len(got))
	}
}

func TestCompactRetiresOldGenerations(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.Append(entryN(i))
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if n := s.AppendsSinceCompact(); n != 50 {
		t.Fatalf("AppendsSinceCompact = %d", n)
	}

	// Snapshot: pretend the live state compacts to 3 entries.
	err = s.Compact(func(append func(Entry) error) error {
		for i := 0; i < 3; i++ {
			if err := append(entryN(1000 + i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if n := s.AppendsSinceCompact(); n != 0 {
		t.Fatalf("AppendsSinceCompact after compaction = %d", n)
	}

	// Tail entries after the snapshot.
	s.Append(entryN(2000))
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	got := collect(t, s)
	if len(got) != 4 {
		t.Fatalf("replayed %d entries, want 3 snapshot + 1 tail", len(got))
	}
	if got[0].Action.Job != "SITE-001000" || got[3].Action.Job != "SITE-002000" {
		t.Fatalf("wrong replay order: %s ... %s", got[0].Action.Job, got[3].Action.Job)
	}

	// The original 50-entry journal is gone.
	if _, err := os.Stat(filepath.Join(dir, journalName(0))); !os.IsNotExist(err) {
		t.Fatalf("journal-0 still present after compaction")
	}
}

// TestStaleSnapshotTempDoesNotBreakRecovery is the regression for a crash
// mid-compaction: a leftover snapshot-NNNNNNNN.snap.tmp must neither be
// mistaken for a real snapshot (the lax-Sscanf bug made Replay try to open
// the nonexistent renamed name) nor survive the next Open.
func TestStaleSnapshotTempDoesNotBreakRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		s.Append(entryN(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a compaction that died between writing the temp snapshot and
	// renaming it into place.
	stale := filepath.Join(dir, snapshotName(2)+".tmp")
	if err := os.WriteFile(stale, []byte("half-written snapshot"), 0o600); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with stale temp: %v", err)
	}
	defer s2.Close()
	if got := collect(t, s2); len(got) != 5 {
		t.Fatalf("replayed %d entries, want 5", len(got))
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp snapshot still present after Open")
	}
}

func TestScanRejectsNearMissNames(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{
		journalName(1), snapshotName(1), // the only two that must match
		snapshotName(2) + ".tmp", journalName(2) + ".bak",
		"x" + journalName(3), "journal-1.wal", "snapshot-.snap",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o600); err != nil {
			t.Fatalf("WriteFile %s: %v", name, err)
		}
	}
	journals, snapshots, err := scan(dir)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(journals) != 1 || journals[0] != 1 {
		t.Fatalf("journals = %v, want [1]", journals)
	}
	if len(snapshots) != 1 || snapshots[0] != 1 {
		t.Fatalf("snapshots = %v, want [1]", snapshots)
	}
}

func TestConcurrentAppendersLoseNothing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	const workers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Append(entryN(w*each + i))
			}
		}(w)
	}
	wg.Wait()
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := collect(t, s); len(got) != workers*each {
		t.Fatalf("replayed %d entries, want %d", len(got), workers*each)
	}
}

// BenchmarkJournalAppend measures the producer-side cost of an append: the
// enqueue that runs on the NJS transition path while the flusher goroutine
// does the I/O.
func BenchmarkJournalAppend(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	defer s.Close()
	e := entryN(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(e)
	}
	b.StopTimer()
	if err := s.Sync(); err != nil {
		b.Fatalf("Sync: %v", err)
	}
}

// BenchmarkJournalAppendParallel is the contended shape: many NJS operations
// appending transitions at once.
func BenchmarkJournalAppendParallel(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	defer s.Close()
	e := entryN(1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.Append(e)
		}
	})
	b.StopTimer()
	if err := s.Sync(); err != nil {
		b.Fatalf("Sync: %v", err)
	}
}
