// Package journal is the durability substrate of the NJS (the stateful heart
// of the server tier, paper §4.2, §5.5): an append-only, CRC-framed
// write-ahead journal plus a periodic snapshot/compaction scheme. The paper's
// production follow-up made the NJS keep consigned jobs across restarts; this
// package provides the log that makes that possible.
//
// # Model
//
// A Store owns one state directory holding two kinds of files:
//
//	journal-<gen>.wal    appended entries since snapshot <gen>
//	snapshot-<gen>.snap  a compacted entry stream reconstructing all state
//
// Both use the same record format, so recovery is a single replay path:
// replay the highest snapshot, then every journal file of that generation or
// later, in order. A snapshot is "just" a compacted journal — the emitter
// walks live state and writes the minimal entry sequence that rebuilds it.
//
// Snapshots are fuzzy: compaction first rotates the journal to a new
// generation and then captures state while traffic continues, so the tail
// journal may repeat mutations already reflected in the snapshot. Replay
// therefore must be idempotent — appliers skip transitions that are already
// terminal and treat file writes as last-writer-wins — and with that property
// the replayed state converges exactly to the crash-time state.
//
// # Record framing
//
// Each record is length-prefixed and checksummed:
//
//	offset 0: uint32 little-endian payload length
//	offset 4: uint64 little-endian CRC64-ECMA of the payload
//	offset 12: payload (a self-contained gob-encoded Entry)
//
// A torn tail (short frame or CRC mismatch at the end of the newest journal
// file) is truncated silently — it is the expected shape of a crash mid-write.
// Corruption anywhere else is an error.
package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"time"
)

// ErrCorrupt reports a damaged record before the journal tail.
var ErrCorrupt = errors.New("journal: corrupt record")

var crcTable = crc64.MakeTable(crc64.ECMA)

// headerSize is the fixed frame prefix: 4-byte length + 8-byte CRC.
const headerSize = 12

// maxRecordSize bounds a single record (a corrupted length field must not
// make the reader allocate gigabytes).
const maxRecordSize = 256 << 20

// Kind tags the payload carried by an Entry.
type Kind uint8

const (
	// KindFileWrite materialises a file with full contents (appends are
	// journaled as full-content writes so replay is idempotent).
	KindFileWrite Kind = iota + 1
	// KindFileRemove removes a file or tree.
	KindFileRemove
	// KindMkdir creates a directory chain.
	KindMkdir
	// KindRename moves a file or directory.
	KindRename
	// KindAdmit records a job admission (consign): identity, login, and the
	// full AJO payload in the ajo gob codec.
	KindAdmit
	// KindActionStart records a non-terminal action transition (queued by the
	// batch subsystem, started on the machine).
	KindActionStart
	// KindActionDone records a terminal action outcome.
	KindActionDone
	// KindInject records a dependency file staged into a not-yet-consigned
	// sub-job.
	KindInject
	// KindRemote records a sub-job consigned to a peer Usite.
	KindRemote
	// KindControl records a hold/resume/abort control transition.
	KindControl
	// KindRootDone records a job reaching its terminal aggregate status.
	KindRootDone
	// KindSeq restores the job-ID counter (snapshot bookkeeping).
	KindSeq
	// KindJobEvent records one protocol-v2 subscription event exactly as the
	// event log assigned it (per-job and per-log sequence numbers included),
	// so a recovered NJS restores its event log with the original cursor
	// numbering — what keeps subscriber cursors valid across a crash.
	KindJobEvent
)

var kindNames = [...]string{
	"", "FILE_WRITE", "FILE_REMOVE", "MKDIR", "RENAME", "ADMIT",
	"ACTION_START", "ACTION_DONE", "INJECT", "REMOTE", "CONTROL",
	"ROOT_DONE", "SEQ", "JOB_EVENT",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && k > 0 {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// FileMutation is a journaled change to a Vsite's data space.
type FileMutation struct {
	Vsite string
	Path  string
	To    string // rename destination
	Data  []byte // full file contents for writes
}

// Admission is a journaled job admission.
type Admission struct {
	Job          string
	Owner        string
	UID          string
	Groups       []string
	Project      string
	Vsite        string
	AJO          []byte // ajo gob codec
	ConsignID    string
	ParentJob    string
	ParentAction string
	Submitted    time.Time
}

// FileStat mirrors an outcome file record.
type FileStat struct {
	Path string
	Size int64
	CRC  uint64
}

// ActionEvent is a journaled per-action transition. Start events carry only
// Status; done events carry the full terminal outcome. For actions whose
// outcome holds a nested tree (sub-jobs), Tree carries the serialized
// outcome node instead of the flat fields.
type ActionEvent struct {
	Job      string
	Action   string
	Status   int
	Reason   string
	ExitCode int
	Stdout   []byte
	Stderr   []byte
	Files    []FileStat
	Started  time.Time
	Finished time.Time
	Tree     []byte
}

// Injection is a dependency file staged for an unconsigned sub-job.
type Injection struct {
	Job   string
	After string
	Name  string
	Data  []byte
}

// RemoteLink records a sub-job consigned to a peer Usite.
type RemoteLink struct {
	Job       string
	Action    string
	Usite     string
	RemoteJob string
}

// ControlEvent records a hold/resume/abort transition.
type ControlEvent struct {
	Job string
	Op  string
}

// RootEvent records a job's terminal aggregate status.
type RootEvent struct {
	Job      string
	Status   int
	Finished time.Time
}

// JobEventRecord is a journaled subscription event (package events), stored
// with the exact sequence numbers the event log assigned, plus the owner DN
// that keys the per-user stream on restore.
type JobEventRecord struct {
	Owner    string
	Job      string
	Seq      uint64
	Global   uint64
	Origin   string
	Type     string
	Action   string
	Status   int
	Reason   string
	Time     time.Time
	Terminal bool
}

// Entry is one journal record. Exactly the payload field matching Kind is
// set; the rest stay nil so gob keeps records compact.
type Entry struct {
	Kind    Kind
	File    *FileMutation
	Admit   *Admission
	Action  *ActionEvent
	Inject  *Injection
	Remote  *RemoteLink
	Control *ControlEvent
	Root    *RootEvent
	Event   *JobEventRecord
	Seq     int64
}

// encode frames one entry: header + gob payload.
func encode(buf *bytes.Buffer, e Entry) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(e); err != nil {
		return fmt.Errorf("journal: encoding %s entry: %w", e.Kind, err)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint64(hdr[4:12], crc64.Checksum(payload.Bytes(), crcTable))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())
	return nil
}

// readResult classifies what the reader found at the current offset.
type readResult int

const (
	readOK   readResult = iota
	readEOF             // clean end of stream
	readTorn            // short/garbled tail frame
)

// readEntry decodes one frame from r.
func readEntry(r io.Reader) (Entry, readResult, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Entry{}, readEOF, nil
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Entry{}, readTorn, nil
		}
		return Entry{}, readTorn, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint64(hdr[4:12])
	if length > maxRecordSize {
		return Entry{}, readTorn, nil
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return Entry{}, readTorn, nil
		}
		return Entry{}, readTorn, err
	}
	if crc64.Checksum(payload, crcTable) != want {
		return Entry{}, readTorn, nil
	}
	var e Entry
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
		// The frame checksummed correctly but the payload does not decode:
		// that is corruption, not a torn tail.
		return Entry{}, readOK, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return e, readOK, nil
}

// validPrefix returns the byte length of the longest prefix of r that
// consists of whole, checksummed frames. Everything after it is a torn tail.
func validPrefix(r io.Reader) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var offset int64
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return offset, nil // clean EOF or short header: prefix ends here
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint64(hdr[4:12])
		if length > maxRecordSize {
			return offset, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return offset, nil
		}
		if crc64.Checksum(payload, crcTable) != want {
			return offset, nil
		}
		offset += headerSize + int64(length)
	}
}

// readAll replays every entry in r through fn. tolerateTail controls whether
// a torn final frame is silently dropped (journals) or an error (snapshots).
func readAll(r io.Reader, tolerateTail bool, fn func(Entry) error) error {
	br := bufio.NewReaderSize(r, 1<<16)
	for {
		e, res, err := readEntry(br)
		if err != nil {
			return err
		}
		switch res {
		case readEOF:
			return nil
		case readTorn:
			if tolerateTail {
				return nil
			}
			return fmt.Errorf("%w: torn record in snapshot", ErrCorrupt)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
}
