package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
)

// writer is the batched appender behind a Store. Append enqueues an entry
// under a small mutex and returns immediately; a background goroutine drains
// the queue in batches (group commit), so producers — which may hold NJS job
// locks or the vfs lock — never wait on file I/O. Sync blocks until every
// entry appended so far is written and fsynced.
type writer struct {
	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	pending  []Entry
	appended int64 // entries handed to Append
	flushed  int64 // entries written to the file
	err      error // first write error, sticky
	closed   bool
	done     chan struct{}
}

// newWriter opens (creating or appending to) the journal file at path and
// starts the flusher.
func newWriter(path string) (*writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := &writer{f: f, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	go w.flushLoop()
	return w, nil
}

// Append enqueues one entry. It never blocks on I/O; a sticky write error
// surfaces on the next Sync or Close.
func (w *writer) Append(e Entry) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.pending = append(w.pending, e)
	w.appended++
	w.mu.Unlock()
	w.cond.Signal()
}

// flushLoop drains the queue in batches until Close.
func (w *writer) flushLoop() {
	defer close(w.done)
	var buf bytes.Buffer
	for {
		w.mu.Lock()
		for len(w.pending) == 0 && !w.closed && w.err == nil {
			w.cond.Wait()
		}
		if w.err != nil || (w.closed && len(w.pending) == 0) {
			w.mu.Unlock()
			return
		}
		batch := w.pending
		w.pending = nil
		w.mu.Unlock()

		buf.Reset()
		var err error
		for _, e := range batch {
			if err = encode(&buf, e); err != nil {
				break
			}
		}
		if err == nil {
			_, err = w.f.Write(buf.Bytes())
		}

		w.mu.Lock()
		w.flushed += int64(len(batch))
		if err != nil && w.err == nil {
			w.err = err
		}
		w.mu.Unlock()
		w.cond.Broadcast()
	}
}

// Sync blocks until everything appended before the call is on disk. Syncing
// a writer that Close has already retired is a no-op success: Close drains
// and fsyncs before closing the file.
func (w *writer) Sync() error {
	w.mu.Lock()
	target := w.appended
	for w.flushed < target && w.err == nil {
		w.cond.Wait()
	}
	err := w.err
	closed := w.closed
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if closed {
		// Close drains and fsyncs; wait for the drain, then fsync ourselves
		// in case Close has not reached its own Sync yet. A file Close
		// already closed was already synced.
		<-w.done
		if serr := w.f.Sync(); serr != nil && !errors.Is(serr, os.ErrClosed) {
			return serr
		}
		return nil
	}
	return w.f.Sync()
}

// Close drains the queue, fsyncs, and closes the file.
func (w *writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
	<-w.done
	w.mu.Lock()
	err := w.err
	w.mu.Unlock()
	if serr := w.f.Sync(); err == nil {
		err = serr
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
