package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
)

// writer is the batched appender behind a Store. Append enqueues an entry
// under a small mutex and returns immediately; a background goroutine drains
// the queue in batches (group commit), so producers — which may hold NJS job
// locks or the vfs lock — never wait on file I/O. Sync blocks until every
// entry appended so far is written and fsynced.
type writer struct {
	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	pending  []Entry
	appended int64 // entries handed to Append
	flushed  int64 // entries written to the file
	err      error // first write error, sticky
	closed   bool
	done     chan struct{}
}

// newWriter opens (creating or appending to) the journal file at path and
// starts the flusher.
func newWriter(path string) (*writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := &writer{f: f, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	go w.flushLoop()
	return w, nil
}

// Append enqueues one entry. It never blocks on I/O; a sticky write error
// surfaces on the next Sync or Close. After such an error the flusher is
// gone, so entries are dropped rather than queued without bound.
func (w *writer) Append(e Entry) {
	w.mu.Lock()
	if w.closed || w.err != nil {
		w.mu.Unlock()
		return
	}
	w.pending = append(w.pending, e)
	w.appended++
	w.mu.Unlock()
	w.cond.Signal()
}

// flushLoop drains the queue in batches until Close.
func (w *writer) flushLoop() {
	defer close(w.done)
	var buf bytes.Buffer
	for {
		w.mu.Lock()
		for len(w.pending) == 0 && !w.closed && w.err == nil {
			w.cond.Wait()
		}
		if w.err != nil || (w.closed && len(w.pending) == 0) {
			w.mu.Unlock()
			return
		}
		batch := w.pending
		w.pending = nil
		w.mu.Unlock()

		buf.Reset()
		var err error
		for _, e := range batch {
			if err = encode(&buf, e); err != nil {
				break
			}
		}
		if err == nil {
			_, err = w.f.Write(buf.Bytes())
		}

		w.mu.Lock()
		w.flushed += int64(len(batch))
		if err != nil && w.err == nil {
			w.err = err
		}
		w.mu.Unlock()
		w.cond.Broadcast()
	}
}

// Sync blocks until everything appended before the call is on disk. Syncing
// a writer that Close has already retired reports Close's outcome: Close
// drains and fsyncs before closing the file, and records its fsync failure
// in the sticky error.
func (w *writer) Sync() error {
	w.mu.Lock()
	target := w.appended
	for w.flushed < target && w.err == nil {
		w.cond.Wait()
	}
	err := w.err
	closed := w.closed
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if closed {
		// Close drains before fsyncing; wait for the drain so our target
		// entries are on their way to the file before we fsync.
		<-w.done
	}
	return w.syncFile()
}

// syncFile fsyncs the journal file, tolerating a concurrent Close: the fd is
// only closed after Close's own drain+fsync, so ErrClosed means Close got
// there first — and its fsync outcome is in the sticky error, which was
// recorded before the fd was closed.
func (w *writer) syncFile() error {
	serr := w.f.Sync()
	if serr == nil {
		return nil
	}
	if !errors.Is(serr, os.ErrClosed) {
		return serr
	}
	w.mu.Lock()
	err := w.err
	w.mu.Unlock()
	return err
}

// Close drains the queue, fsyncs, and closes the file. A failed fsync is
// recorded in the sticky error before the fd is closed, so a racing Sync
// never mistakes "file closed" for "data durable".
func (w *writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
	<-w.done
	serr := w.f.Sync()
	w.mu.Lock()
	if serr != nil && w.err == nil {
		w.err = serr
	}
	err := w.err
	w.mu.Unlock()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
