package journal

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// fuzzSeedFrames builds a well-formed two-frame journal image for seeding:
// an admission followed by a control event, exactly as the writer frames
// them (4-byte LE length, 8-byte LE CRC64-ECMA, gob payload).
func fuzzSeedFrames(t testing.TB) []byte {
	var buf bytes.Buffer
	entries := []Entry{
		{Kind: KindAdmit, Admit: &Admission{
			Job: "FZJ-1", Owner: "CN=Alice,O=FZJ", UID: "alice",
			Vsite: "T3E", AJO: []byte("payload"), Submitted: time.Unix(919814400, 0),
		}},
		{Kind: KindControl, Control: &ControlEvent{Job: "FZJ-1", Op: "abort"}},
	}
	for _, e := range entries {
		if err := encode(&buf, e); err != nil {
			t.Fatalf("encoding seed entry: %v", err)
		}
	}
	return buf.Bytes()
}

// FuzzFrameReplay hammers the CRC64 frame scanner and the replay loop with
// arbitrary byte streams — the exact inputs a crashed NJS hands them at
// recovery time. Invariants: no panic, validPrefix stays within bounds and
// never errors, a torn-tail-tolerant replay accepts any input that is not
// positively corrupt, and the declared valid prefix replays without a torn
// record.
func FuzzFrameReplay(f *testing.F) {
	valid := fuzzSeedFrames(f)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail mid-frame
	flipped := bytes.Clone(valid)
	flipped[headerSize+1] ^= 0xff // corrupt first payload byte: CRC mismatch
	f.Add(flipped)
	short := bytes.Clone(valid[:headerSize-2]) // torn header
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := validPrefix(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("validPrefix errored: %v", err)
		}
		if n < 0 || n > int64(len(data)) {
			t.Fatalf("validPrefix returned %d for %d input bytes", n, len(data))
		}

		// Tolerant replay (the journal path) must accept anything that is
		// not positively corrupt — i.e. the only acceptable error is a
		// checksummed frame whose gob payload does not decode.
		count := 0
		err = readAll(bytes.NewReader(data), true, func(Entry) error { count++; return nil })
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("tolerant replay failed with a non-corruption error: %v", err)
		}

		// The valid prefix consists of whole frames only: a strict
		// (snapshot-style) replay of it must never report a torn record.
		err = readAll(bytes.NewReader(data[:n]), false, func(Entry) error { return nil })
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("strict replay of the valid prefix found a torn record: %v", err)
		}
	})
}

// FuzzEncodeDecodeRoundTrip checks that any admission record the writer can
// frame comes back verbatim through the reader.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add("FZJ-1", "CN=Alice,O=FZJ", "alice", []byte("ajo"), int64(7))
	f.Add("", "", "", []byte(nil), int64(0))
	f.Fuzz(func(t *testing.T, job, owner, uid string, ajo []byte, seq int64) {
		// "J"+job keeps the Admission non-zero: gob omits zero-valued
		// fields, and a nil-decoded Admit would be a false mismatch.
		in := Entry{Kind: KindAdmit, Seq: seq, Admit: &Admission{
			Job: "J" + job, Owner: owner, UID: uid, AJO: ajo,
		}}
		var buf bytes.Buffer
		if err := encode(&buf, in); err != nil {
			t.Fatalf("encode: %v", err)
		}
		out, res, err := readEntry(bytes.NewReader(buf.Bytes()))
		if err != nil || res != readOK {
			t.Fatalf("readEntry: res=%v err=%v", res, err)
		}
		if out.Kind != in.Kind || out.Seq != in.Seq || out.Admit == nil {
			t.Fatalf("round trip mangled the entry: %+v", out)
		}
		a, b := in.Admit, out.Admit
		if a.Job != b.Job || a.Owner != b.Owner || a.UID != b.UID || !bytes.Equal(a.AJO, b.AJO) {
			t.Fatalf("round trip mangled the admission: %+v != %+v", a, b)
		}
	})
}
