package journal

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Store manages one state directory of journal generations and snapshots.
//
// Concurrency: Append is safe from any goroutine and never blocks on a
// running compaction — Compact swaps the live writer under a small mutex
// first and only then captures the snapshot. Compactions themselves are
// serialized.
type Store struct {
	dir string

	// wmu guards only the live-writer pointers and generation number; it is
	// held for pointer swaps, never across I/O or state capture.
	wmu sync.Mutex
	w   *writer
	// prev is the rotated-out writer while Compact is still draining it
	// (nil otherwise). Sync must cover it: an entry appended just before
	// the rotation lives there, and Sync's durability promise includes it.
	prev *writer
	// cerr is the first failure to drain/close a rotated-out generation.
	// Entries acknowledged into that generation may not be on disk, so once
	// set, Sync fails forever — the store can no longer promise durability.
	cerr error
	gen  uint64

	// compactMu serializes compactions.
	compactMu sync.Mutex

	closed  atomic.Bool
	appends atomic.Int64 // entries since the last compaction (snapshot cadence)
}

func journalName(gen uint64) string  { return fmt.Sprintf("journal-%08d.wal", gen) }
func snapshotName(gen uint64) string { return fmt.Sprintf("snapshot-%08d.snap", gen) }

// scan lists the generation numbers present in dir.
func scan(dir string) (journals, snapshots []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	for _, ent := range entries {
		var gen uint64
		switch {
		case matchGen(ent.Name(), "journal-%08d.wal", &gen):
			journals = append(journals, gen)
		case matchGen(ent.Name(), "snapshot-%08d.snap", &gen):
			snapshots = append(snapshots, gen)
		}
	}
	sort.Slice(journals, func(i, j int) bool { return journals[i] < journals[j] })
	sort.Slice(snapshots, func(i, j int) bool { return snapshots[i] < snapshots[j] })
	return journals, snapshots, nil
}

// matchGen reports whether name is exactly format rendered with some
// generation number. Sscanf alone is too lax: it ignores trailing input, so
// a leftover snapshot temp file ("snapshot-00000002.snap.tmp") would match
// the snapshot format — the parsed generation is rendered back and compared
// against the whole name to reject such near-misses.
func matchGen(name, format string, gen *uint64) bool {
	var g uint64
	if n, err := fmt.Sscanf(name, format, &g); n != 1 || err != nil {
		return false
	}
	if fmt.Sprintf(format, g) != name {
		return false
	}
	*gen = g
	return true
}

// Open creates (if needed) and opens a state directory. Appends continue in
// the newest journal generation; Replay starts from the newest snapshot.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := removeStaleTemps(dir); err != nil {
		return nil, err
	}
	journals, snapshots, err := scan(dir)
	if err != nil {
		return nil, err
	}
	gen := uint64(0)
	if len(snapshots) > 0 {
		gen = snapshots[len(snapshots)-1]
	}
	if len(journals) > 0 && journals[len(journals)-1] > gen {
		gen = journals[len(journals)-1]
	}
	// A crash may have left a torn frame at the journal tail. Appending
	// after it would strand everything written from here on behind garbage
	// the next replay stops at — truncate the file to its valid prefix
	// before reopening it for append.
	path := filepath.Join(dir, journalName(gen))
	if err := truncateTornTail(path); err != nil {
		return nil, err
	}
	w, err := newWriter(path)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, w: w, gen: gen}, nil
}

// removeStaleTemps deletes *.tmp files left behind by a compaction that
// crashed between creating the temp snapshot and renaming it into place.
func removeStaleTemps(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".tmp") {
			if err := os.Remove(filepath.Join(dir, ent.Name())); err != nil {
				return fmt.Errorf("journal: removing stale %s: %w", ent.Name(), err)
			}
		}
	}
	return nil
}

// truncateTornTail cuts a journal file back to its longest prefix of valid
// frames. A missing file is fine (fresh directory).
func truncateTornTail(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	valid, err := validPrefix(f)
	_ = f.Close() // read-only scan; the truncation below is path-based
	if err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if valid < fi.Size() {
		if err := os.Truncate(path, valid); err != nil {
			return fmt.Errorf("journal: truncating torn tail of %s: %w", filepath.Base(path), err)
		}
	}
	return nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// Append enqueues one entry on the live journal. It is cheap and
// non-blocking; durability is deferred to the batched flusher (call Sync to
// force it). The enqueue happens under wmu so it cannot race Compact's
// writer swap: an entry lands either in the old generation (whose Close
// drains it) or the new one — never in a writer that is already closed.
func (s *Store) Append(e Entry) {
	if s.closed.Load() {
		return
	}
	s.wmu.Lock()
	s.w.Append(e)
	s.wmu.Unlock()
	s.appends.Add(1)
}

// AppendsSinceCompact reports entries appended since the last compaction —
// the input to the snapshot cadence decision.
func (s *Store) AppendsSinceCompact() int64 { return s.appends.Load() }

// Sync flushes and fsyncs everything appended so far — including entries in
// a journal generation that Compact has rotated out but not finished
// draining.
func (s *Store) Sync() error {
	s.wmu.Lock()
	cerr := s.cerr
	prev := s.prev
	w := s.w
	s.wmu.Unlock()
	if cerr != nil {
		return cerr
	}
	if prev != nil {
		if err := prev.Sync(); err != nil {
			return err
		}
	}
	return w.Sync()
}

// Replay streams the newest snapshot (if any) and then every journal of that
// generation or later, in order, through fn. A torn tail on a journal is
// silently dropped; corruption elsewhere is an error. Replay reads committed
// files only, so it may run before traffic starts (recovery) without racing
// the live writer.
func (s *Store) Replay(fn func(Entry) error) error {
	journals, snapshots, err := scan(s.dir)
	if err != nil {
		return err
	}
	snapGen := uint64(0)
	if len(snapshots) > 0 {
		snapGen = snapshots[len(snapshots)-1]
		if err := replayFile(filepath.Join(s.dir, snapshotName(snapGen)), false, fn); err != nil {
			return err
		}
	}
	for _, g := range journals {
		if g < snapGen {
			continue
		}
		if err := replayFile(filepath.Join(s.dir, journalName(g)), true, fn); err != nil {
			return err
		}
	}
	return nil
}

func replayFile(path string, tolerateTail bool, fn func(Entry) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only replay
	if err := readAll(f, tolerateTail, fn); err != nil {
		return fmt.Errorf("journal: replaying %s: %w", filepath.Base(path), err)
	}
	return nil
}

// Compact takes a snapshot and retires older generations. emit is called with
// an append function and must write the entry stream that reconstructs all
// live state; it runs while appends continue on the next journal generation,
// so the snapshot may be fuzzy — replay idempotency (see the package comment)
// makes that safe.
//
// Sequence: rotate the journal to generation g+1, capture the snapshot to a
// temp file, fsync, rename to snapshot-(g+1), then delete generations <= g.
// A crash at any point leaves a recoverable directory: Replay always starts
// from the newest complete snapshot.
func (s *Store) Compact(emit func(append func(Entry) error) error) error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if s.closed.Load() {
		return fmt.Errorf("journal: store closed")
	}

	// Rotate: new generation's journal takes appends from here on. The file
	// open happens before taking wmu — producers calling Append (possibly
	// under NJS job locks or the vfs lock) must never wait on a syscall.
	// s.gen is stable here: only Compact mutates it, under compactMu.
	oldGen := s.gen
	newGen := oldGen + 1
	neww, err := newWriter(filepath.Join(s.dir, journalName(newGen)))
	if err != nil {
		return err
	}
	s.wmu.Lock()
	oldw := s.w
	s.w = neww
	s.prev = oldw
	s.gen = newGen
	s.appends.Store(0)
	s.wmu.Unlock()
	err = oldw.Close()
	s.wmu.Lock()
	s.prev = nil
	if err != nil && s.cerr == nil {
		s.cerr = err // the retiring generation may be incomplete on disk
	}
	s.wmu.Unlock()
	if err != nil {
		return err
	}

	// Capture: write the snapshot to a temp file, then publish atomically.
	tmp := filepath.Join(s.dir, snapshotName(newGen)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	werr := func() error {
		bw := bufio.NewWriterSize(f, 1<<16)
		var frame bytes.Buffer
		appendFn := func(e Entry) error {
			frame.Reset()
			if err := encode(&frame, e); err != nil {
				return err
			}
			_, err := bw.Write(frame.Bytes())
			return err
		}
		if err := emit(appendFn); err != nil {
			return err
		}
		return bw.Flush()
	}()
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: writing snapshot: %w", werr)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName(newGen))); err != nil {
		return fmt.Errorf("journal: %w", err)
	}

	// Retire: everything before the new generation is now redundant.
	journals, snapshots, err := scan(s.dir)
	if err != nil {
		return err
	}
	for _, g := range journals {
		if g <= oldGen {
			os.Remove(filepath.Join(s.dir, journalName(g)))
		}
	}
	for _, g := range snapshots {
		if g <= oldGen {
			os.Remove(filepath.Join(s.dir, snapshotName(g)))
		}
	}
	return nil
}

// Close flushes, fsyncs, and closes the live journal. Further appends are
// dropped. It takes compactMu so it cannot interleave with Compact: without
// it, Close could capture the pre-rotation writer while Compact swaps in a
// fresh one that would then never be closed — leaking its flusher goroutine
// and losing whatever was batched into it.
func (s *Store) Close() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if s.closed.Swap(true) {
		return nil
	}
	s.wmu.Lock()
	w := s.w
	cerr := s.cerr
	s.wmu.Unlock()
	err := w.Close()
	if err == nil {
		err = cerr
	}
	return err
}
