package controller

import (
	"context"
	"testing"

	"time"

	"unicore/internal/ajo"
	"unicore/internal/client"
	"unicore/internal/core"
	"unicore/internal/deploy"
	"unicore/internal/njs"
	"unicore/internal/pki"
	"unicore/internal/resources"
	"unicore/internal/sim"
	"unicore/internal/uudb"
)

// stackJob builds a minimal script job for the stack's Vsite.
func stackJob(t *testing.T, name string) *ajo.AbstractJob {
	t.Helper()
	b := client.NewJob(name, core.Target{Usite: "FZJ", Vsite: "T3E"})
	b.Script("noop", "echo "+name+"\n", resources.Request{Processors: 1, RunTime: 10 * time.Minute, MemoryMB: 16})
	job, err := b.Build()
	if err != nil {
		t.Fatalf("building %s: %v", name, err)
	}
	return job
}

// TestStackBootHealRoll drives the spec-booted stack through its whole
// lifecycle: boot to the declared topology, survive a replica crash by
// journal recovery, and roll the fleet on a generation bump — all with the
// admitted job's state intact throughout.
func TestStackBootHealRoll(t *testing.T) {
	clock := sim.NewVirtualClock()
	ca, err := pki.NewAuthority("DFN-PCA")
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	cred, err := ca.IssueServer("gateway.fzj", "gw.fzj")
	if err != nil {
		t.Fatalf("IssueServer: %v", err)
	}
	alice, err := ca.IssueUser("Alice Ahlmann", "FZJ")
	if err != nil {
		t.Fatalf("IssueUser: %v", err)
	}
	spec := &deploy.TopologySpec{
		Version: deploy.TopologyVersion,
		Sites: []deploy.TopologySite{{
			Usite: "FZJ",
			Vsites: []deploy.TopologyVsite{{
				Name: "T3E", Machine: "t3e", Replicas: 2,
				Policy: "round-robin", SnapshotEvery: 64,
			}},
			Users: []deploy.UserMapping{{
				DN:     alice.DN(),
				Logins: map[core.Vsite]uudb.Login{"T3E": {UID: "aahlm"}},
			}},
		}},
	}
	stack, err := NewStack(StackConfig{
		Spec: spec, Usite: "FZJ", Cred: cred, CA: ca,
		Clock: clock, StateRoot: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	defer stack.Close()

	set, ok := stack.Router.Set("T3E")
	if !ok || len(set.Names()) != 2 {
		t.Fatal("boot did not populate the declared 2-replica T3E pool")
	}

	// Controller metrics ride the gateway scrape.
	found := false
	for _, snap := range stack.Gateway.Metrics() {
		if snap.Origin == "controller/FZJ" && snap.Total("controller_reconcile_total") > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("controller metrics are not visible through the gateway scrape")
	}

	// Admit a job through the pool, then crash its owning replica.
	id, err := stack.Router.Consign(context.Background(), alice.DN(), "stack-cid-1", stackJob(t, "probe"))
	if err != nil {
		t.Fatalf("Consign: %v", err)
	}
	owner, ok := set.Owner(id)
	if !ok {
		t.Fatal("admitted job has no owning replica")
	}
	svc, _ := set.Service(owner)
	crashed := svc.(*njs.NJS)
	if err := crashed.SyncJournal(); err != nil {
		t.Fatalf("SyncJournal: %v", err)
	}
	crashed.Kill()

	res, err := stack.Controller.ReconcileNow()
	if err != nil {
		t.Fatalf("heal pass: %v", err)
	}
	if res.Healed != 1 {
		t.Fatalf("heal pass = %+v, want one heal", res)
	}
	if reply, err := stack.Router.Poll(alice.DN(), false, id); err != nil || !reply.Found {
		t.Fatalf("job lost across crash+heal: found=%v err=%v", reply.Found, err)
	}

	// Roll the fleet: generation bump replaces both replicas one at a time,
	// and the journal-recovered instances still hold the job.
	spec.Sites[0].Vsites[0].Generation = 1
	if err := stack.Apply(spec); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for i := 0; i < 4; i++ {
		if res, err := stack.Controller.ReconcileNow(); err != nil {
			t.Fatalf("roll pass %d: %v", i, err)
		} else if res.Converged {
			break
		}
	}
	snap := stack.Controller.Telemetry().Snapshot()
	if got := snap.Total("controller_roll_total"); got != 2 {
		t.Fatalf("controller_roll_total = %v, want 2", got)
	}
	if reply, err := stack.Router.Poll(alice.DN(), false, id); err != nil || !reply.Found {
		t.Fatalf("job lost across the rolling replacement: err=%v", err)
	}
	if err := stack.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
