package controller

// Stack boots a whole serving site from a declarative topology spec: UUDB,
// replica pools, gateway, and the controller that keeps the pools converged
// on the spec. It is the programmatic half of `unicore-ctl apply -f` — the
// daemons and tools hand it a parsed TopologySpec and get back a live
// deployment whose replicas the controller builds, heals, rolls, and
// scales, with per-replica journals rooted under the spec's journalDir.

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"unicore/internal/accounting"
	"unicore/internal/broker"
	"unicore/internal/core"
	"unicore/internal/deploy"
	"unicore/internal/federation"
	"unicore/internal/gateway"
	"unicore/internal/journal"
	"unicore/internal/njs"
	"unicore/internal/pki"
	"unicore/internal/pool"
	"unicore/internal/protocol"
	"unicore/internal/sim"
	"unicore/internal/telemetry"
	"unicore/internal/uudb"
)

// DefaultSnapshotEvery bounds journal growth for spec-managed replicas that
// do not declare their own snapshot cadence.
const DefaultSnapshotEvery = 1024

// StackConfig assembles one site's stack from a topology spec.
type StackConfig struct {
	// Spec is the parsed, validated topology document.
	Spec *deploy.TopologySpec
	// Usite selects which declared site to boot.
	Usite core.Usite
	// Cred and CA are the gateway's server credential and trust root.
	Cred *pki.Credential
	CA   *pki.Authority
	// Clock drives everything (sim.RealClock{} in daemons).
	Clock sim.Scheduler
	// StateRoot overrides the spec's journalDir; when both are empty the
	// replicas are memory-only (crashes heal empty — testbeds only).
	StateRoot string
	// Interval is the controller's reconcile cadence (default
	// DefaultInterval).
	Interval time.Duration
	// AdvertiseURL is this gateway's base URL in federation
	// self-advertisements — what peer gateways dial to forward work here.
	// Required when the spec's peers block names sites other than this one.
	AdvertiseURL string
	// FedTransport carries federation gossip and forwarded consigns to peer
	// gateways (default: a mutual-TLS transport over Cred and CA). Testbeds
	// inject their in-process network here.
	FedTransport protocol.Transport
	// GossipInterval is the federation gossip cadence (default one minute).
	GossipInterval time.Duration
}

// Stack is one booted site: the gateway fronting a controller-managed
// replica pool router.
type Stack struct {
	Gateway    *gateway.Gateway
	Router     *pool.Router
	Controller *Controller
	Users      *uudb.DB
	// Federation is the gateway's grid membership, nil when the spec
	// declares no peers beyond this site itself.
	Federation *federation.Federation

	usite     core.Usite
	clock     sim.Scheduler
	stateRoot string

	mu     sync.Mutex
	stores map[string]*journal.Store // vsite/tag → open journal store
}

// NewStack builds the stack and runs the first reconcile pass, so the
// returned deployment is already serving the declared topology. Call
// Controller.Start to arm the continuous loop, and Close on shutdown.
func NewStack(cfg StackConfig) (*Stack, error) {
	if cfg.Spec == nil {
		return nil, errors.New("controller: nil topology spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	site, ok := cfg.Spec.Site(cfg.Usite)
	if !ok {
		return nil, fmt.Errorf("controller: topology declares no usite %q", cfg.Usite)
	}
	if cfg.Clock == nil {
		return nil, errors.New("controller: nil clock")
	}
	users, err := deploy.BuildUsers(site.Usite, site.Users, cfg.Clock)
	if err != nil {
		return nil, err
	}
	router, err := pool.NewRouter(site.Usite)
	if err != nil {
		return nil, err
	}
	st := &Stack{
		Router:    router,
		Users:     users,
		usite:     site.Usite,
		clock:     cfg.Clock,
		stateRoot: cfg.StateRoot,
		stores:    make(map[string]*journal.Store),
	}
	if st.stateRoot == "" {
		st.stateRoot = cfg.Spec.JournalDir
	}
	ctl, err := New(Config{
		Site:     *site,
		Router:   router,
		Clock:    cfg.Clock,
		Interval: cfg.Interval,
		Build:    st.build,
		Recover:  st.recover,
		Retire:   st.retire,
	})
	if err != nil {
		return nil, err
	}
	st.Controller = ctl
	gw, err := gateway.New(gateway.Config{
		Usite:   site.Usite,
		Cred:    cfg.Cred,
		CA:      cfg.CA,
		Users:   users,
		Backend: router,
	})
	if err != nil {
		return nil, err
	}
	gw.Telemetry().SetNow(cfg.Clock.Now)
	gw.AddMetricsSource(func() []telemetry.Snapshot {
		return []telemetry.Snapshot{ctl.Telemetry().Snapshot()}
	})
	st.Gateway = gw
	if err := st.federate(cfg); err != nil {
		return nil, err
	}
	if _, err := ctl.ReconcileNow(); err != nil {
		return nil, errors.Join(err, st.Close())
	}
	if st.Federation != nil {
		st.Federation.Start(cfg.GossipInterval)
	}
	return st, nil
}

// federate attaches the federation half when the spec's peers block names
// sites other than this one. The peer entry for this site itself (the shared
// one-spec-per-grid idiom) is skipped.
func (s *Stack) federate(cfg StackConfig) error {
	var peers []deploy.TopologyPeer
	for _, p := range cfg.Spec.Peers {
		if p.Usite != s.usite {
			peers = append(peers, p)
		}
	}
	if len(peers) == 0 {
		return nil
	}
	url := cfg.AdvertiseURL
	if url == "" {
		// The shared-spec idiom again: the site's own peer entry carries the
		// URL the rest of the grid dials it at.
		if self, ok := cfg.Spec.Peer(s.usite); ok {
			url = self.URL
		}
	}
	if url == "" {
		return fmt.Errorf("controller: topology declares peers but no advertise URL for %s", s.usite)
	}
	rt := cfg.FedTransport
	if rt == nil {
		rt = gateway.ClientTransport(cfg.Cred, cfg.CA)
	}
	fed, err := federation.New(federation.Config{
		Usite:  s.usite,
		URL:    url,
		Client: protocol.NewClient(rt, cfg.Cred, cfg.CA, protocol.NewRegistry()),
		Clock:  cfg.Clock,
		Policy: broker.LeastLoaded,
		Usage:  s.usage,
	})
	if err != nil {
		return err
	}
	for _, p := range peers {
		if err := fed.AddPeer(p.Usite, p.URL); err != nil {
			return err
		}
	}
	s.Gateway.SetFederation(fed)
	s.Federation = fed
	return nil
}

// usage aggregates the live batch accounting of every replica into the
// charge-back summary the federation advertises.
func (s *Stack) usage() accounting.Summary {
	desired := s.Controller.Desired()
	var recs []accounting.Record
	for _, set := range s.Router.Sets() {
		v, ok := desired.Vsite(set.Vsite())
		if !ok {
			continue
		}
		vc, err := v.NJSConfig()
		if err != nil {
			continue
		}
		for _, tag := range set.Names() {
			svc, ok := set.Service(tag)
			if !ok {
				continue
			}
			n, ok := svc.(*njs.NJS)
			if !ok {
				continue
			}
			vs, ok := n.Vsite(set.Vsite())
			if !ok {
				continue
			}
			for _, rec := range vs.RMS.Accounting() {
				recs = append(recs, accounting.Record{
					Target:      core.Target{Usite: s.usite, Vsite: set.Vsite()},
					MFlopsPerPE: vc.Profile.MFlopsPerPE,
					Record:      rec,
				})
			}
		}
	}
	return accounting.Summarise(recs)
}

// Apply re-declares the stack's site from a new spec document and
// reconciles once — the `unicore-ctl apply -f` entry point.
func (s *Stack) Apply(spec *deploy.TopologySpec) error {
	site, ok := spec.Site(s.usite)
	if !ok {
		return fmt.Errorf("controller: topology declares no usite %q", s.usite)
	}
	if err := s.Controller.Apply(*site); err != nil {
		return err
	}
	_, err := s.Controller.ReconcileNow()
	return err
}

func (s *Stack) storeKey(v core.Vsite, tag string) string {
	return string(v) + "/" + tag
}

// build constructs a replica for the controller: journal-backed under
// <stateRoot>/<usite>/<vsite>/<tag> when a state root is declared,
// memory-only otherwise.
func (s *Stack) build(v deploy.TopologyVsite, tag string) (njs.Service, error) {
	vc, err := v.NJSConfig()
	if err != nil {
		return nil, err
	}
	if s.stateRoot == "" {
		return deploy.BuildReplica(s.usite, vc, s.clock, tag)
	}
	dir := filepath.Join(s.stateRoot, string(s.usite), string(v.Name), tag)
	store, err := journal.Open(dir)
	if err != nil {
		return nil, err
	}
	every := v.SnapshotEvery
	if every <= 0 {
		every = DefaultSnapshotEvery
	}
	n, err := deploy.BuildDurableReplica(s.usite, vc, s.clock, tag, store, every)
	if err != nil {
		return nil, errors.Join(err, store.Close())
	}
	s.mu.Lock()
	s.stores[s.storeKey(v.Name, tag)] = store
	s.mu.Unlock()
	return n, nil
}

// recover is the heal/roll path: release the crashed instance's journal
// handle, then rebuild from the same directory — the recovered replica
// replays its journal, and the pool's rejoin reconciliation re-homes its
// ack entries and stage pins.
func (s *Stack) recover(v deploy.TopologyVsite, tag string) (njs.Service, error) {
	s.mu.Lock()
	store := s.stores[s.storeKey(v.Name, tag)]
	delete(s.stores, s.storeKey(v.Name, tag))
	s.mu.Unlock()
	if store != nil {
		if err := store.Close(); err != nil {
			return nil, fmt.Errorf("controller: releasing journal of %s/%s: %w", v.Name, tag, err)
		}
	}
	return s.build(v, tag)
}

// retire shuts a replaced or scaled-down instance all the way down:
// snapshot (compacting the journal for the next recovery), kill, close.
func (s *Stack) retire(v deploy.TopologyVsite, tag string, svc njs.Service) error {
	var errs []error
	if n, ok := svc.(*njs.NJS); ok {
		if n.Ping() == nil {
			errs = append(errs, n.Snapshot())
			n.Kill()
		}
	}
	s.mu.Lock()
	store := s.stores[s.storeKey(v.Name, tag)]
	delete(s.stores, s.storeKey(v.Name, tag))
	s.mu.Unlock()
	if store != nil {
		errs = append(errs, store.Close())
	}
	return errors.Join(errs...)
}

// Close stops the reconcile loop and shuts every replica down cleanly:
// snapshot, kill, close journals.
func (s *Stack) Close() error {
	if s.Federation != nil {
		s.Federation.Stop()
	}
	s.Controller.Stop()
	var errs []error
	for _, set := range s.Router.Sets() {
		for _, tag := range set.Names() {
			svc, ok := set.Service(tag)
			if !ok {
				continue
			}
			if n, ok := svc.(*njs.NJS); ok && n.Ping() == nil {
				errs = append(errs, n.Snapshot())
				n.Kill()
			}
		}
	}
	s.mu.Lock()
	stores := s.stores
	s.stores = make(map[string]*journal.Store)
	s.mu.Unlock()
	for _, store := range stores {
		errs = append(errs, store.Close())
	}
	return errors.Join(errs...)
}
