// Package controller converges a live deployment onto a declarative
// topology spec — the operational layer the paper's testbed never needed
// and the production follow-up ("UNICORE — From Project Results to
// Production Grids") reports dominating real deployments. A Controller
// owns one Usite: each reconcile pass diffs the declared state
// (deploy.TopologySite — per-Vsite replica counts, routing policies,
// fleet generations, spool TTLs) against the pool.Router actually serving
// traffic, and repairs the difference:
//
//   - missing Vsites get replica sets, missing replicas get built and
//     added to the live set (the declared floor, then autoscale headroom),
//   - crashed replicas are healed: recovered from their journals and
//     swapped back in under the same pool name, reusing the pool's rejoin
//     reconciliation so ack indexes and stage pins survive,
//   - a bumped fleet Generation rolls the replicas one at a time with
//     drain-before-kill: stop routing new work, wait for in-flight calls
//     to settle, retire the old instance, recover its journal, rejoin,
//   - pools scale up under backlog (the njs_consign_inflight gauge plus
//     queued jobs) and down after sustained idleness (no backlog, no
//     occupancy, no event-log growth), inside the declared bounds,
//   - each replica's staging spool is swept on the declared TTL.
//
// Every pass and state change is recorded in the controller's telemetry
// registry; wire it into a gateway with AddMetricsSource so reconcile
// loops, scale events, and drain durations scrape through the same
// MsgMetrics door as the serving tiers.
package controller

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"unicore/internal/core"
	"unicore/internal/deploy"
	"unicore/internal/njs"
	"unicore/internal/pool"
	"unicore/internal/sim"
	"unicore/internal/telemetry"
)

// DefaultInterval is the reconcile cadence for Start when Config.Interval
// is zero.
const DefaultInterval = 5 * time.Second

// Config assembles a Controller for one Usite.
type Config struct {
	// Site is the desired state; update it later with Apply.
	Site deploy.TopologySite
	// Router is the live deployment the controller converges.
	Router *pool.Router
	// Clock times reconcile passes and drain durations. Required.
	Clock sim.Scheduler
	// Interval is the Start cadence (default DefaultInterval).
	Interval time.Duration
	// Build constructs a fresh replica for a declared Vsite under a pool
	// tag. Required.
	Build func(v deploy.TopologyVsite, tag string) (njs.Service, error)
	// Recover reconstructs a replica from its durable state (its journal)
	// under the same tag — the heal and roll path. Required; memory-only
	// deployments may return a fresh instance (the replica heals empty).
	Recover func(v deploy.TopologyVsite, tag string) (njs.Service, error)
	// Retire releases a replica instance that left the set or was replaced:
	// kill it, close its journal. Optional.
	Retire func(v deploy.TopologyVsite, tag string, svc njs.Service) error
}

// drainOp tracks one replica mid-drain (rolling replacement or scale-down).
type drainOp struct {
	tag   string
	since time.Time
}

// vsiteState is the controller's runtime memory for one Vsite.
type vsiteState struct {
	created   bool           // the replica set has been through a pass
	gens      map[string]int // replica tag → fleet generation it runs
	idle      int            // consecutive idle passes (autoscale-down signal)
	lastDepth float64        // event-log depth at the previous pass
	roll      *drainOp       // in-progress rolling replacement
	shrink    *drainOp       // in-progress scale-down drain
}

// Result summarises one reconcile pass.
type Result struct {
	// ScaledUp / ScaledDown count replicas added / retired this pass
	// (including initial population of a new Vsite).
	ScaledUp, ScaledDown int
	// Healed counts crashed replicas recovered and swapped back in.
	Healed int
	// Rolled counts replicas replaced by the generation roll.
	Rolled int
	// Draining counts replicas currently waiting for their drain to settle.
	Draining int
	// Converged reports that every declared Vsite is fully served: replica
	// count inside its declared bounds, every replica healthy and on the
	// declared generation, nothing draining.
	Converged bool
}

// Controller reconciles one Usite's live deployment onto its declared
// topology.
type Controller struct {
	mu      sync.Mutex
	desired deploy.TopologySite
	cfg     Config
	vsites  map[core.Vsite]*vsiteState
	running bool
	timer   sim.Timer

	tel *telemetry.Registry
}

// New assembles a controller. Replicas already serving in the router are
// adopted as-is at the declared generation (the controller trusts what it
// inherits; bump the generation to roll them).
func New(cfg Config) (*Controller, error) {
	if cfg.Router == nil {
		return nil, errors.New("controller: nil router")
	}
	if cfg.Clock == nil {
		return nil, errors.New("controller: nil clock")
	}
	if cfg.Build == nil || cfg.Recover == nil {
		return nil, errors.New("controller: need Build and Recover hooks")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Site.Usite != cfg.Router.Usite() {
		return nil, fmt.Errorf("controller: spec declares usite %q but the router serves %q",
			cfg.Site.Usite, cfg.Router.Usite())
	}
	c := &Controller{
		desired: cfg.Site,
		cfg:     cfg,
		vsites:  make(map[core.Vsite]*vsiteState),
		tel:     telemetry.New("controller/" + string(cfg.Router.Usite())),
	}
	c.tel.SetNow(cfg.Clock.Now)
	for _, set := range cfg.Router.Sets() {
		st := c.state(set.Vsite())
		st.created = true
		if v, ok := c.desired.Vsite(set.Vsite()); ok {
			for _, tag := range set.Names() {
				st.gens[tag] = v.Generation
			}
		}
	}
	return c, nil
}

// Telemetry returns the controller's metrics registry; expose it on a
// gateway with AddMetricsSource.
func (c *Controller) Telemetry() *telemetry.Registry { return c.tel }

// Usite returns the site this controller manages.
func (c *Controller) Usite() core.Usite { return c.cfg.Router.Usite() }

// Desired returns the current declared state.
func (c *Controller) Desired() deploy.TopologySite {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.desired
}

// Apply replaces the desired state — the `unicore-ctl apply` path. The next
// reconcile pass starts converging on it; replicas of Vsites no longer
// declared are left serving (Vsite removal is not automated — drain and
// retire by hand).
func (c *Controller) Apply(site deploy.TopologySite) error {
	if site.Usite != c.Usite() {
		return fmt.Errorf("controller: spec declares usite %q but this controller manages %q",
			site.Usite, c.Usite())
	}
	spec := deploy.TopologySpec{Version: deploy.TopologyVersion, Sites: []deploy.TopologySite{site}}
	if err := spec.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	c.desired = site
	c.mu.Unlock()
	return nil
}

// state returns (creating if needed) the runtime state of a Vsite.
func (c *Controller) state(v core.Vsite) *vsiteState {
	st, ok := c.vsites[v]
	if !ok {
		st = &vsiteState{gens: make(map[string]int)}
		c.vsites[v] = st
	}
	return st
}

// Start arms the continuous reconcile loop on the configured clock. Under a
// virtual clock, prefer calling ReconcileNow at the instants that matter
// (a perpetual timer keeps RunUntilIdle from going idle).
func (c *Controller) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return
	}
	c.running = true
	c.armLocked()
}

// armLocked schedules the next pass; callers hold c.mu.
func (c *Controller) armLocked() {
	c.timer = c.cfg.Clock.AfterFunc(c.cfg.Interval, func() {
		c.ReconcileNow()
		c.mu.Lock()
		if c.running {
			c.armLocked()
		}
		c.mu.Unlock()
	})
}

// Stop cancels the reconcile loop.
func (c *Controller) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.running = false
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
}

// ReconcileNow runs one reconcile pass over every declared Vsite and
// reports what it changed. Errors (a Build hook failing, say) do not stop
// the pass — the remaining Vsites still converge — but are joined into the
// returned error.
func (c *Controller) ReconcileNow() (Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := c.cfg.Clock.Now()
	c.tel.Counter("controller_reconcile_total").Inc()

	var res Result
	var errs []error
	res.Converged = true
	for i := range c.desired.Vsites {
		v := &c.desired.Vsites[i]
		ok, err := c.reconcileVsite(v, &res)
		if err != nil {
			errs = append(errs, err)
		}
		if !ok {
			res.Converged = false
		}
	}
	if res.Converged {
		c.tel.Gauge("controller_converged").Set(1)
	} else {
		c.tel.Gauge("controller_converged").Set(0)
	}
	c.tel.Histogram("controller_reconcile_seconds", telemetry.ScaleSeconds).
		ObserveDuration(c.cfg.Clock.Now().Sub(start))
	return res, errors.Join(errs...)
}

// reconcileVsite converges one Vsite and reports whether it is converged.
func (c *Controller) reconcileVsite(v *deploy.TopologyVsite, res *Result) (bool, error) {
	st := c.state(v.Name)
	set, ok := c.cfg.Router.Set(v.Name)
	if !ok {
		policy, err := pool.ParsePolicy(v.Policy)
		if err != nil {
			return false, err
		}
		set, err = pool.New(pool.Config{Vsite: v.Name, Policy: policy, Clock: c.cfg.Clock})
		if err != nil {
			return false, err
		}
		if err := c.cfg.Router.AddSet(set); err != nil {
			return false, err
		}
	}
	var errs []error

	// Heal crashed replicas first, so the scaling arithmetic below counts
	// them as serving again rather than doubling them with fresh capacity.
	c.heal(v, set, st, res, &errs)

	// Population: hold the declared count (or, when autoscaling, keep the
	// live count inside the declared bounds; new Vsites start at the
	// declared resting size).
	names := set.Names()
	target := len(names)
	if !st.created || v.Autoscale == nil {
		target = v.DeclaredReplicas()
	} else {
		if a := v.Autoscale; target < a.Min {
			target = a.Min
		} else if target > a.Max {
			target = a.Max
		}
	}
	st.created = true

	// Autoscale signals: in-flight consigns (the njs_consign_inflight
	// gauge) plus queued work drive scale-up; an unchanged event log with
	// zero backlog and occupancy accumulates idle passes for scale-down.
	load := set.LoadInfo()
	inflight, depth := c.signals(set)
	backlog := inflight + float64(load.Pending)
	if a := v.Autoscale; a != nil {
		healthy := len(set.Healthy())
		if backlog == 0 && load.Load == 0 && depth == st.lastDepth {
			st.idle++
		} else {
			st.idle = 0
		}
		st.lastDepth = depth
		if a.BacklogPerReplica > 0 && healthy > 0 &&
			backlog > float64(a.BacklogPerReplica*healthy) && target < a.Max {
			target++
		}
	}

	// Grow to target.
	for len(names) < target {
		tag := c.freeTag(names)
		svc, err := c.cfg.Build(*v, tag)
		if err != nil {
			errs = append(errs, fmt.Errorf("controller: building %s/%s: %w", v.Name, tag, err))
			break
		}
		if err := set.Add(tag, svc); err != nil {
			errs = append(errs, err)
			break
		}
		resumeRecovered(svc)
		st.gens[tag] = v.Generation
		names = append(names, tag)
		res.ScaledUp++
		c.tel.Counter("controller_scale_up_total", "vsite", string(v.Name)).Inc()
	}

	// Rolling replacement: a generation bump replaces replicas one at a
	// time, drain-before-kill.
	c.roll(v, set, st, res, &errs)

	// Scale down after sustained idleness, also drain-before-kill, never
	// below the floor and never concurrently with a roll.
	c.shrink(v, set, st, target, res, &errs)

	// Spool hygiene: sweep each replica's staged uploads on the declared
	// TTL horizon.
	if ttl := v.SpoolTTL(); ttl > 0 {
		for _, tag := range set.Names() {
			if svc, ok := set.Service(tag); ok {
				if sw, ok := svc.(interface{ SweepStaging(time.Duration) int }); ok {
					sw.SweepStaging(ttl)
				}
			}
		}
	}

	names = set.Names()
	c.tel.Gauge("controller_replicas", "vsite", string(v.Name)).Set(int64(len(names)))
	converged := st.roll == nil && st.shrink == nil &&
		len(set.Healthy()) == len(names) && c.withinBounds(v, len(names))
	if converged {
		for _, tag := range names {
			if st.gens[tag] != v.Generation {
				converged = false
				break
			}
		}
	}
	return converged, errors.Join(errs...)
}

// withinBounds checks a live replica count against the declaration.
func (c *Controller) withinBounds(v *deploy.TopologyVsite, n int) bool {
	if a := v.Autoscale; a != nil {
		return n >= a.Min && n <= a.Max
	}
	return n == v.DeclaredReplicas()
}

// signals sums the autoscale inputs over the replicas' live metric
// snapshots: the njs_consign_inflight gauge and the event_log_depth gauge.
func (c *Controller) signals(set *pool.ReplicaSet) (inflight, depth float64) {
	for _, tag := range set.Names() {
		svc, ok := set.Service(tag)
		if !ok {
			continue
		}
		for _, snap := range svc.Metrics() {
			inflight += snap.Total("njs_consign_inflight")
			depth += snap.Total("event_log_depth")
		}
	}
	return inflight, depth
}

// heal recovers every crashed replica from its durable state and swaps it
// back in under the same pool name — the pool's rejoin reconciliation then
// re-homes its ack-index entries and stage pins.
func (c *Controller) heal(v *deploy.TopologyVsite, set *pool.ReplicaSet, st *vsiteState, res *Result, errs *[]error) {
	for _, tag := range set.Names() {
		svc, ok := set.Service(tag)
		if !ok || svc.Ping() == nil {
			continue
		}
		recovered, err := c.cfg.Recover(*v, tag)
		if err != nil {
			*errs = append(*errs, fmt.Errorf("controller: healing %s/%s: %w", v.Name, tag, err))
			continue
		}
		if err := set.SetService(tag, recovered); err != nil {
			*errs = append(*errs, err)
			continue
		}
		resumeRecovered(recovered)
		res.Healed++
		c.tel.Counter("controller_heal_total", "vsite", string(v.Name)).Inc()
	}
}

// roll advances the rolling generation replacement by at most one step:
// start draining the first out-of-generation replica, or — once the drain
// has settled — retire the old instance, recover its journal, and rejoin.
func (c *Controller) roll(v *deploy.TopologyVsite, set *pool.ReplicaSet, st *vsiteState, res *Result, errs *[]error) {
	if st.roll == nil {
		for _, tag := range set.Names() {
			if st.gens[tag] != v.Generation {
				if err := set.Drain(tag); err != nil {
					*errs = append(*errs, err)
					return
				}
				st.roll = &drainOp{tag: tag, since: c.cfg.Clock.Now()}
				break
			}
		}
		if st.roll == nil {
			return
		}
	}
	op := st.roll
	status, err := set.DrainStatus(op.tag)
	if err != nil {
		*errs = append(*errs, err)
		st.roll = nil
		return
	}
	if status.Inflight > 0 {
		res.Draining++
		return // not settled; check again next pass
	}
	old, _ := set.Service(op.tag)
	if c.cfg.Retire != nil && old != nil {
		if err := c.cfg.Retire(*v, op.tag, old); err != nil {
			*errs = append(*errs, fmt.Errorf("controller: retiring %s/%s: %w", v.Name, op.tag, err))
		}
	}
	recovered, err := c.cfg.Recover(*v, op.tag)
	if err != nil {
		*errs = append(*errs, fmt.Errorf("controller: rolling %s/%s: %w", v.Name, op.tag, err))
		st.roll = nil
		return
	}
	if err := set.SetService(op.tag, recovered); err != nil {
		*errs = append(*errs, err)
		st.roll = nil
		return
	}
	resumeRecovered(recovered)
	if err := set.Undrain(op.tag); err != nil {
		*errs = append(*errs, err)
	}
	st.gens[op.tag] = v.Generation
	st.roll = nil
	res.Rolled++
	c.tel.Counter("controller_roll_total", "vsite", string(v.Name)).Inc()
	c.tel.Histogram("controller_drain_seconds", telemetry.ScaleSeconds).
		ObserveDuration(c.cfg.Clock.Now().Sub(op.since))
}

// shrink retires one replica after sustained idleness: drain the
// highest-numbered replica, and once nothing is in flight and its spool is
// empty, remove it from the set and hand the instance to Retire.
func (c *Controller) shrink(v *deploy.TopologyVsite, set *pool.ReplicaSet, st *vsiteState, target int, res *Result, errs *[]error) {
	a := v.Autoscale
	if a == nil || st.roll != nil {
		return
	}
	if st.shrink == nil {
		if st.idle <= a.IdleCycles || len(set.Names()) <= a.Min || target > len(set.Names()) {
			return
		}
		tag := c.lastTag(set.Names())
		if tag == "" {
			return
		}
		if err := set.Drain(tag); err != nil {
			*errs = append(*errs, err)
			return
		}
		st.shrink = &drainOp{tag: tag, since: c.cfg.Clock.Now()}
	}
	op := st.shrink
	if st.idle == 0 {
		// Load returned mid-drain: cancel the scale-down.
		if err := set.Undrain(op.tag); err != nil {
			*errs = append(*errs, err)
		}
		st.shrink = nil
		return
	}
	status, err := set.DrainStatus(op.tag)
	if err != nil {
		*errs = append(*errs, err)
		st.shrink = nil
		return
	}
	if status.Inflight > 0 || status.StagePins > 0 {
		res.Draining++
		return
	}
	old, _ := set.Service(op.tag)
	if err := set.Remove(op.tag); err != nil {
		*errs = append(*errs, err)
		st.shrink = nil
		return
	}
	if c.cfg.Retire != nil && old != nil {
		if err := c.cfg.Retire(*v, op.tag, old); err != nil {
			*errs = append(*errs, fmt.Errorf("controller: retiring %s/%s: %w", v.Name, op.tag, err))
		}
	}
	delete(st.gens, op.tag)
	st.shrink = nil
	res.ScaledDown++
	c.tel.Counter("controller_scale_down_total", "vsite", string(v.Name)).Inc()
	c.tel.Histogram("controller_drain_seconds", telemetry.ScaleSeconds).
		ObserveDuration(c.cfg.Clock.Now().Sub(op.since))
}

// freeTag picks the lowest conventional replica tag not in use.
func (c *Controller) freeTag(names []string) string {
	used := make(map[int]bool, len(names))
	for _, n := range names {
		if i, ok := pool.ParseReplicaTag(n); ok {
			used[i] = true
		}
	}
	for i := 0; ; i++ {
		if !used[i] {
			return pool.ReplicaTag(i)
		}
	}
}

// lastTag picks the highest conventional replica tag — the scale-down
// victim, so pools shrink from the top and tag reuse stays predictable.
func (c *Controller) lastTag(names []string) string {
	best, bestIdx := "", -1
	for _, n := range names {
		if i, ok := pool.ParseReplicaTag(n); ok && i > bestIdx {
			best, bestIdx = n, i
		}
	}
	return best
}

// resumeRecovered invokes the post-wiring resume hook on services that have
// one (*njs.NJS does: re-dispatch in-flight actions, re-arm poll timers).
func resumeRecovered(svc njs.Service) {
	if rr, ok := svc.(interface{ ResumeRecovered() }); ok {
		rr.ResumeRecovered()
	}
}
