package controller

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/deploy"
	"unicore/internal/njs"
	"unicore/internal/pool"
	"unicore/internal/protocol"
	"unicore/internal/resources"
	"unicore/internal/sim"
	"unicore/internal/telemetry"
)

// fakeReplica is a minimal njs.Service whose health, backlog signals, and
// lifecycle hooks the tests steer directly.
type fakeReplica struct {
	mu       sync.Mutex
	vsite    core.Vsite
	tag      string
	down     bool
	inflight int // reported through the njs_consign_inflight gauge
	depth    int // reported through the event_log_depth gauge
	pending  int
	load     float64
	resumed  bool
	swept    []time.Duration
}

func (f *fakeReplica) set(fn func(*fakeReplica)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(f)
}

func (f *fakeReplica) Usite() core.Usite { return "FZJ" }

func (f *fakeReplica) Ping() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return njs.ErrDown
	}
	return nil
}

func (f *fakeReplica) Metrics() []telemetry.Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	reg := telemetry.New("fake/" + f.tag)
	reg.Gauge("njs_consign_inflight", "vsite", string(f.vsite)).Set(int64(f.inflight))
	reg.Gauge("event_log_depth").Set(int64(f.depth))
	return []telemetry.Snapshot{reg.Snapshot()}
}

func (f *fakeReplica) VsiteLoads() map[core.Vsite]njs.VsiteLoad {
	f.mu.Lock()
	defer f.mu.Unlock()
	return map[core.Vsite]njs.VsiteLoad{
		f.vsite: {Load: f.load, Pending: f.pending, Replicas: 1, Healthy: 1},
	}
}

func (f *fakeReplica) ResumeRecovered() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.resumed = true
}

func (f *fakeReplica) SweepStaging(ttl time.Duration) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.swept = append(f.swept, ttl)
	return 0
}

func (f *fakeReplica) Consign(context.Context, core.DN, string, *ajo.AbstractJob) (core.JobID, error) {
	return "", fmt.Errorf("fake: no admission")
}
func (f *fakeReplica) Poll(core.DN, bool, core.JobID) (protocol.PollReply, error) {
	return protocol.PollReply{}, nil
}
func (f *fakeReplica) Outcome(core.DN, bool, core.JobID) (*ajo.Outcome, bool, error) {
	return nil, false, nil
}
func (f *fakeReplica) List(core.DN) ([]protocol.JobInfo, error)               { return nil, nil }
func (f *fakeReplica) Control(core.DN, bool, core.JobID, ajo.ControlOp) error { return nil }
func (f *fakeReplica) FetchFile(core.JobID, string, int64, int64) (protocol.TransferReply, error) {
	return protocol.TransferReply{}, nil
}
func (f *fakeReplica) FetchFileOwned(core.DN, bool, core.JobID, string, int64, int64) (protocol.TransferReply, error) {
	return protocol.TransferReply{}, nil
}
func (f *fakeReplica) StageOpen(core.DN, bool, protocol.PutOpenRequest) (protocol.PutOpenReply, error) {
	return protocol.PutOpenReply{}, nil
}
func (f *fakeReplica) StageChunk(core.DN, bool, protocol.PutChunkRequest) (protocol.PutChunkReply, error) {
	return protocol.PutChunkReply{}, nil
}
func (f *fakeReplica) StageCommit(core.DN, bool, protocol.PutCommitRequest) (protocol.PutCommitReply, error) {
	return protocol.PutCommitReply{}, nil
}
func (f *fakeReplica) Pages() []resources.Page        { return nil }
func (f *fakeReplica) Load() float64                  { return 0 }
func (f *fakeReplica) SetLoginMapper(njs.LoginMapper) {}
func (f *fakeReplica) Events(core.DN, bool, protocol.SubscribeRequest) (protocol.EventsReply, error) {
	return protocol.EventsReply{}, nil
}
func (f *fakeReplica) EventsNotify(protocol.SubscribeRequest) (<-chan struct{}, func()) {
	ch := make(chan struct{})
	return ch, func() {}
}

var _ njs.Service = (*fakeReplica)(nil)

// harness wires a controller over an empty router with Build/Recover/Retire
// hooks that mint fakeReplicas and record lifecycle events.
type harness struct {
	router  *pool.Router
	clock   *sim.VirtualClock
	ctl     *Controller
	mu      sync.Mutex
	built   map[string]*fakeReplica // latest instance per vsite/tag key
	builds  int
	recover int
	retired []string
}

func (h *harness) key(v core.Vsite, tag string) string { return string(v) + "/" + tag }

func (h *harness) replica(t *testing.T, v core.Vsite, tag string) *fakeReplica {
	t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	f, ok := h.built[h.key(v, tag)]
	if !ok {
		t.Fatalf("no replica built for %s/%s", v, tag)
	}
	return f
}

func newHarness(t *testing.T, site deploy.TopologySite) *harness {
	t.Helper()
	router, err := pool.NewRouter(site.Usite)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	h := &harness{router: router, clock: sim.NewVirtualClock(), built: make(map[string]*fakeReplica)}
	mint := func(v deploy.TopologyVsite, tag string) (njs.Service, error) {
		f := &fakeReplica{vsite: v.Name, tag: tag}
		h.mu.Lock()
		h.built[h.key(v.Name, tag)] = f
		h.mu.Unlock()
		return f, nil
	}
	ctl, err := New(Config{
		Site:   site,
		Router: router,
		Clock:  h.clock,
		Build: func(v deploy.TopologyVsite, tag string) (njs.Service, error) {
			h.mu.Lock()
			h.builds++
			h.mu.Unlock()
			return mint(v, tag)
		},
		Recover: func(v deploy.TopologyVsite, tag string) (njs.Service, error) {
			h.mu.Lock()
			h.recover++
			h.mu.Unlock()
			return mint(v, tag)
		},
		Retire: func(v deploy.TopologyVsite, tag string, svc njs.Service) error {
			h.mu.Lock()
			h.retired = append(h.retired, h.key(v.Name, tag))
			h.mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h.ctl = ctl
	return h
}

func (h *harness) reconcile(t *testing.T) Result {
	t.Helper()
	res, err := h.ctl.ReconcileNow()
	if err != nil {
		t.Fatalf("ReconcileNow: %v", err)
	}
	return res
}

// gauge reads one labeled metric value out of a snapshot.
func gauge(t *testing.T, snap telemetry.Snapshot, name string, kv ...string) float64 {
	t.Helper()
	p, ok := snap.Get(name, kv...)
	if !ok {
		t.Fatalf("metric %s%v not in snapshot", name, kv)
	}
	return p.Value
}

func simpleSite(replicas int, auto *deploy.AutoscaleSpec) deploy.TopologySite {
	return deploy.TopologySite{
		Usite: "FZJ",
		Vsites: []deploy.TopologyVsite{{
			Name:      "T3E",
			Machine:   "t3e",
			Replicas:  replicas,
			Policy:    "round-robin",
			Autoscale: auto,
		}},
	}
}

// TestReconcileCreatesDeclaredTopology: a pass over an empty router builds
// the replica set and populates it to the declared count.
func TestReconcileCreatesDeclaredTopology(t *testing.T) {
	h := newHarness(t, simpleSite(3, nil))
	res := h.reconcile(t)
	if res.ScaledUp != 3 || !res.Converged {
		t.Fatalf("first pass = %+v, want 3 scale-ups and convergence", res)
	}
	set, ok := h.router.Set("T3E")
	if !ok {
		t.Fatal("reconcile did not create the T3E replica set")
	}
	if got := len(set.Names()); got != 3 {
		t.Fatalf("set has %d replicas, want 3", got)
	}
	for i := 0; i < 3; i++ {
		if !h.replica(t, "T3E", pool.ReplicaTag(i)).resumed {
			t.Fatalf("replica %d was not resumed after build", i)
		}
	}
	// A second pass changes nothing.
	res = h.reconcile(t)
	if res.ScaledUp != 0 || res.Healed != 0 || !res.Converged {
		t.Fatalf("steady-state pass = %+v, want no-op convergence", res)
	}
	snap := h.ctl.Telemetry().Snapshot()
	if got := snap.Total("controller_reconcile_total"); got != 2 {
		t.Fatalf("controller_reconcile_total = %v, want 2", got)
	}
	if got := gauge(t, snap, "controller_replicas", "vsite", "T3E"); got != 3 {
		t.Fatalf("controller_replicas{T3E} = %v, want 3", got)
	}
	if got := snap.Total("controller_scale_up_total"); got != 3 {
		t.Fatalf("controller_scale_up_total = %v, want 3", got)
	}
	if got := gauge(t, snap, "controller_converged"); got != 1 {
		t.Fatalf("controller_converged = %v, want 1", got)
	}
}

// TestSelfHealReplacesCrashedReplica: a replica whose Ping fails is
// recovered and swapped back in under the same tag.
func TestSelfHealReplacesCrashedReplica(t *testing.T) {
	h := newHarness(t, simpleSite(3, nil))
	h.reconcile(t)
	crashed := h.replica(t, "T3E", "r1")
	crashed.set(func(f *fakeReplica) { f.down = true })

	res := h.reconcile(t)
	if res.Healed != 1 || res.ScaledUp != 0 {
		t.Fatalf("heal pass = %+v, want exactly one heal", res)
	}
	replacement := h.replica(t, "T3E", "r1")
	if replacement == crashed {
		t.Fatal("crashed replica was not replaced")
	}
	if !replacement.resumed {
		t.Fatal("recovered replica was not resumed")
	}
	set, _ := h.router.Set("T3E")
	if svc, _ := set.Service("r1"); svc != njs.Service(replacement) {
		t.Fatal("the set does not serve the recovered instance under r1")
	}
	snap := h.ctl.Telemetry().Snapshot()
	if got := gauge(t, snap, "controller_heal_total", "vsite", "T3E"); got != 1 {
		t.Fatalf("controller_heal_total{T3E} = %v, want 1", got)
	}
}

// TestAutoscaleUpAndDown: backlog grows the pool one replica per pass up to
// the ceiling; sustained idleness drains it back to the floor.
func TestAutoscaleUpAndDown(t *testing.T) {
	auto := &deploy.AutoscaleSpec{Min: 1, Max: 3, BacklogPerReplica: 2, IdleCycles: 2}
	h := newHarness(t, simpleSite(1, auto))
	h.reconcile(t)
	set, _ := h.router.Set("T3E")
	if got := len(set.Names()); got != 1 {
		t.Fatalf("resting size = %d, want 1", got)
	}

	// Flood r0's inflight gauge past the per-replica backlog budget.
	h.replica(t, "T3E", "r0").set(func(f *fakeReplica) { f.inflight = 10 })
	if res := h.reconcile(t); res.ScaledUp != 1 {
		t.Fatalf("backlogged pass = %+v, want one scale-up", res)
	}
	if res := h.reconcile(t); res.ScaledUp != 1 {
		t.Fatalf("second backlogged pass = %+v, want one scale-up", res)
	}
	if got := len(set.Names()); got != 3 {
		t.Fatalf("scaled size = %d, want the declared max of 3", got)
	}
	// At the ceiling, backlog adds nothing more.
	if res := h.reconcile(t); res.ScaledUp != 0 {
		t.Fatalf("at-max pass scaled up: %+v", res)
	}

	// Idle out: zero backlog and a frozen event log shrink back to the
	// floor, one drained replica at a time, highest tag first.
	h.replica(t, "T3E", "r0").set(func(f *fakeReplica) { f.inflight = 0 })
	downs := 0
	for i := 0; i < 12 && len(set.Names()) > 1; i++ {
		res := h.reconcile(t)
		downs += res.ScaledDown
	}
	if got := len(set.Names()); got != 1 {
		t.Fatalf("idle pool holds %d replicas, want the floor of 1", got)
	}
	if downs != 2 {
		t.Fatalf("observed %d scale-downs, want 2", downs)
	}
	h.mu.Lock()
	retired := append([]string(nil), h.retired...)
	h.mu.Unlock()
	if len(retired) != 2 || retired[0] != "T3E/r2" || retired[1] != "T3E/r1" {
		t.Fatalf("retired = %v, want highest-tag-first [T3E/r2 T3E/r1]", retired)
	}
	snap := h.ctl.Telemetry().Snapshot()
	if got := snap.Total("controller_scale_down_total"); got != 2 {
		t.Fatalf("controller_scale_down_total = %v, want 2", got)
	}
	if got := snap.HistCount("controller_drain_seconds"); got != 2 {
		t.Fatalf("controller_drain_seconds count = %v, want 2", got)
	}
}

// TestIdleCounterResetsUnderLoad: a busy pool never starts a scale-down.
func TestIdleCounterResetsUnderLoad(t *testing.T) {
	auto := &deploy.AutoscaleSpec{Min: 1, Max: 3, BacklogPerReplica: 100, IdleCycles: 2}
	h := newHarness(t, simpleSite(2, auto))
	h.reconcile(t)
	set, _ := h.router.Set("T3E")
	// A trickle of inflight work on every pass keeps the idle counter at
	// zero: many passes later the pool still holds its resting size.
	h.replica(t, "T3E", "r0").set(func(f *fakeReplica) { f.inflight = 1 })
	for i := 0; i < 10; i++ {
		if res := h.reconcile(t); res.ScaledDown != 0 {
			t.Fatalf("pass %d scaled down under load: %+v", i, res)
		}
	}
	if got := len(set.Names()); got != 2 {
		t.Fatalf("busy pool shrank to %d replicas", got)
	}
}

// TestRollingGenerationBump: bumping the fleet generation replaces every
// replica, one drain-settle-retire-recover cycle per replica.
func TestRollingGenerationBump(t *testing.T) {
	site := simpleSite(2, nil)
	h := newHarness(t, site)
	h.reconcile(t)
	gen0 := []*fakeReplica{h.replica(t, "T3E", "r0"), h.replica(t, "T3E", "r1")}

	site.Vsites[0].Generation = 1
	if err := h.ctl.Apply(site); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	res := h.reconcile(t)
	if res.Rolled != 1 || res.Converged {
		t.Fatalf("first roll pass = %+v, want one roll and no convergence yet", res)
	}
	res = h.reconcile(t)
	if res.Rolled != 1 || !res.Converged {
		t.Fatalf("second roll pass = %+v, want the final roll and convergence", res)
	}
	for i, old := range gen0 {
		tag := pool.ReplicaTag(i)
		fresh := h.replica(t, "T3E", tag)
		if fresh == old {
			t.Fatalf("replica %s was not replaced by the roll", tag)
		}
		if !fresh.resumed {
			t.Fatalf("rolled replica %s was not resumed", tag)
		}
	}
	h.mu.Lock()
	retired := len(h.retired)
	h.mu.Unlock()
	if retired != 2 {
		t.Fatalf("retired %d instances, want 2", retired)
	}
	set, _ := h.router.Set("T3E")
	for _, tag := range set.Names() {
		if set.Draining(tag) {
			t.Fatalf("replica %s left draining after the roll completed", tag)
		}
	}
	snap := h.ctl.Telemetry().Snapshot()
	if got := gauge(t, snap, "controller_roll_total", "vsite", "T3E"); got != 2 {
		t.Fatalf("controller_roll_total{T3E} = %v, want 2", got)
	}
	if got := snap.HistCount("controller_drain_seconds"); got != 2 {
		t.Fatalf("controller_drain_seconds count = %v, want 2", got)
	}
	// Steady state again: no further rolls.
	if res := h.reconcile(t); res.Rolled != 0 || !res.Converged {
		t.Fatalf("post-roll pass = %+v, want converged no-op", res)
	}
}

// TestSpoolSweep: a declared spool TTL sweeps every replica each pass.
func TestSpoolSweep(t *testing.T) {
	site := simpleSite(2, nil)
	site.Vsites[0].SpoolTTLSec = 3600
	h := newHarness(t, site)
	h.reconcile(t)
	h.reconcile(t)
	for i := 0; i < 2; i++ {
		f := h.replica(t, "T3E", pool.ReplicaTag(i))
		f.mu.Lock()
		swept := append([]time.Duration(nil), f.swept...)
		f.mu.Unlock()
		if len(swept) == 0 || swept[0] != time.Hour {
			t.Fatalf("replica %d swept %v, want hourly sweeps each pass", i, swept)
		}
	}
}

// TestApplyRejectsForeignSite: the controller refuses a spec for a
// different Usite or an invalid one.
func TestApplyRejectsForeignSite(t *testing.T) {
	h := newHarness(t, simpleSite(1, nil))
	if err := h.ctl.Apply(deploy.TopologySite{Usite: "ZIB"}); err == nil {
		t.Fatal("Apply accepted a spec for a different usite")
	}
	bad := simpleSite(1, nil)
	bad.Vsites[0].Policy = "nonesuch"
	if err := h.ctl.Apply(bad); err == nil {
		t.Fatal("Apply accepted an invalid policy")
	}
}

// TestStartStopLoop: the armed loop reconciles on the clock cadence.
func TestStartStopLoop(t *testing.T) {
	h := newHarness(t, simpleSite(2, nil))
	h.ctl.Start()
	defer h.ctl.Stop()
	h.clock.Advance(DefaultInterval)
	set, ok := h.router.Set("T3E")
	if !ok || len(set.Names()) != 2 {
		t.Fatal("armed loop did not converge the topology after one interval")
	}
	// A crash heals on the next tick without manual passes.
	h.replica(t, "T3E", "r0").set(func(f *fakeReplica) { f.down = true })
	h.clock.Advance(DefaultInterval)
	if h.replica(t, "T3E", "r0").Ping() != nil {
		t.Fatal("armed loop did not heal the crashed replica")
	}
	h.ctl.Stop()
	snap := h.ctl.Telemetry().Snapshot()
	before := snap.Total("controller_reconcile_total")
	h.clock.Advance(10 * DefaultInterval)
	if got := h.ctl.Telemetry().Snapshot().Total("controller_reconcile_total"); got != before {
		t.Fatalf("reconcile ran after Stop: %v → %v", before, got)
	}
}
