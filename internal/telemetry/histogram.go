package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Scale selects a fixed log2 bucket layout for a Histogram. Fixed layouts
// keep Observe allocation-free and make snapshots from different replicas
// mergeable bucket-by-bucket.
type Scale int

// Built-in bucket layouts.
const (
	// ScaleSeconds buckets latencies from 1µs to ~35min in powers of two.
	ScaleSeconds Scale = iota
	// ScaleBytes buckets sizes from 1B to 32GiB in powers of two.
	ScaleBytes
	// ScaleCount buckets small cardinalities from 1 to 512Ki in powers of
	// two (batch sizes, queue depths).
	ScaleCount
)

// layout describes one scale: the value of the first bucket's upper bound
// and how many finite buckets precede the +Inf overflow bucket.
type layout struct {
	base    float64
	buckets int
}

var layouts = map[Scale]layout{
	ScaleSeconds: {base: 1e-6, buckets: 32},
	ScaleBytes:   {base: 1, buckets: 36},
	ScaleCount:   {base: 1, buckets: 20},
}

// Histogram accumulates observations into fixed log2 buckets. Observe is a
// bounded number of atomic ops; Sum is kept as CAS-updated float bits.
type Histogram struct {
	scale   Scale
	base    float64
	sumBits atomic.Uint64
	counts  []atomic.Uint64 // len = layout.buckets + 1 (+Inf)
}

func newHistogram(scale Scale) *Histogram {
	l, ok := layouts[scale]
	if !ok {
		l = layouts[ScaleSeconds]
	}
	return &Histogram{scale: scale, base: l.base, counts: make([]atomic.Uint64, l.buckets+1)}
}

// bucketIndex maps a value to its bucket: bucket i covers
// (base*2^(i-1), base*2^i]; the final bucket is +Inf overflow.
func (h *Histogram) bucketIndex(v float64) int {
	if v <= h.base {
		return 0
	}
	u := uint64(math.Ceil(v / h.base))
	idx := bits.Len64(u - 1) // smallest i with u <= 2^i
	if idx >= len(h.counts)-1 {
		return len(h.counts) - 1
	}
	return idx
}

// Observe records one value in the histogram's native unit (seconds for
// ScaleSeconds, bytes for ScaleBytes). Negative values clamp to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.counts[h.bucketIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a wall-clock duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the wall time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the running total of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// upperBound returns bucket i's inclusive upper bound; the last bucket is
// +Inf.
func (h *Histogram) upperBound(i int) float64 {
	if i >= len(h.counts)-1 {
		return math.Inf(1)
	}
	return h.base * float64(uint64(1)<<uint(i))
}

func (h *Histogram) kind() Kind { return KindHistogram }

func (h *Histogram) point(name string, labels map[string]string) MetricPoint {
	bs := make([]Bucket, len(h.counts))
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		total += c
		bs[i] = Bucket{LE: h.upperBound(i), Count: c}
	}
	return MetricPoint{
		Name:    name,
		Labels:  copyLabels(labels),
		Kind:    KindHistogram,
		Count:   total,
		Sum:     h.Sum(),
		Buckets: bs,
	}
}
