package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestConcurrentIncrements(t *testing.T) {
	r := New("test")
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits", "worker", "shared")
			ga := r.Gauge("level")
			h := r.Histogram("lat_seconds", ScaleSeconds)
			for i := 0; i < per; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits", "worker", "shared").Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	if got := r.Gauge("level").Value(); got != goroutines*per {
		t.Fatalf("gauge = %d, want %d", got, goroutines*per)
	}
	h := r.Histogram("lat_seconds", ScaleSeconds)
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*per)
	}
	if want := float64(goroutines*per) * 0.001; math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), want)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram(ScaleSeconds)
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{5e-7, 0},   // below base → first bucket
		{1e-6, 0},   // exactly base → first bucket (inclusive upper bound)
		{1.5e-6, 1}, // (1µs, 2µs]
		{2e-6, 1},   // exactly 2µs → bucket 1
		{2.001e-6, 2},
		{1e-3, 10},               // 1ms = 1024µs ≤ 2^10µs
		{1.0, 20},                // 1s = 1e6µs ≤ 2^20µs (1048576)
		{1e9, len(h.counts) - 1}, // overflow → +Inf bucket
	}
	for _, c := range cases {
		if got := h.bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// Upper bounds: bucket i must admit exactly values ≤ base*2^i.
	if ub := h.upperBound(3); ub != 8e-6 {
		t.Errorf("upperBound(3) = %g, want 8e-6", ub)
	}
	if !math.IsInf(h.upperBound(len(h.counts)-1), 1) {
		t.Errorf("last bucket bound not +Inf")
	}
	// An observation at a bound and one just above land in adjacent buckets.
	h.Observe(8e-6)
	h.Observe(8.1e-6)
	if h.counts[3].Load() != 1 || h.counts[4].Load() != 1 {
		t.Errorf("boundary observations landed in buckets %d/%d", h.counts[3].Load(), h.counts[4].Load())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := New("iso")
	c := r.Counter("events", "kind", "a")
	h := r.Histogram("sizes_bytes", ScaleBytes)
	c.Add(5)
	h.Observe(100)
	snap := r.Snapshot()

	// Mutate after the snapshot: the frozen copy must not move.
	c.Add(100)
	h.Observe(1 << 20)
	r.Counter("events", "kind", "b").Inc()

	p, ok := snap.Get("events", "kind", "a")
	if !ok || p.Value != 5 {
		t.Fatalf("snapshot counter = %+v, want value 5", p)
	}
	if _, ok := snap.Get("events", "kind", "b"); ok {
		t.Fatalf("snapshot grew a metric created after Snapshot()")
	}
	hp, ok := snap.Get("sizes_bytes")
	if !ok || hp.Count != 1 || hp.Sum != 100 {
		t.Fatalf("snapshot histogram = %+v, want count 1 sum 100", hp)
	}
	// Mutating the snapshot's labels must not leak back into the registry.
	p.Labels["kind"] = "mutated"
	if p2, _ := r.Snapshot().Get("events", "kind", "a"); p2.Value != 105 {
		t.Fatalf("registry counter after snapshot mutation = %+v", p2)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := New("order")
	r.Counter("zzz").Inc()
	r.Counter("aaa").Inc()
	r.Gauge("mmm").Set(1)
	s := r.Snapshot()
	var names []string
	for _, p := range s.Metrics {
		names = append(names, p.Name)
	}
	if strings.Join(names, ",") != "aaa,mmm,zzz" {
		t.Fatalf("snapshot order = %v", names)
	}
}

func TestMergeAcrossOrigins(t *testing.T) {
	a, b := New("r0"), New("r1")
	a.Counter("consign_total").Add(3)
	b.Counter("consign_total").Add(4)
	a.Gauge("inflight").Set(2)
	b.Gauge("inflight").Set(1)
	a.Histogram("ack_seconds", ScaleSeconds).Observe(0.01)
	b.Histogram("ack_seconds", ScaleSeconds).Observe(0.02)

	m := Merge("pool", a.Snapshot(), b.Snapshot())
	if m.Origin != "pool" {
		t.Fatalf("origin = %q", m.Origin)
	}
	if got := m.Total("consign_total"); got != 7 {
		t.Fatalf("merged counter = %g, want 7", got)
	}
	if got := m.Total("inflight"); got != 3 {
		t.Fatalf("merged gauge = %g, want 3", got)
	}
	if got := m.HistCount("ack_seconds"); got != 2 {
		t.Fatalf("merged histogram count = %d, want 2", got)
	}
}

func TestQuantile(t *testing.T) {
	r := New("q")
	h := r.Histogram("lat_seconds", ScaleSeconds)
	for i := 0; i < 99; i++ {
		h.Observe(0.001) // all in the ≤1024µs bucket
	}
	h.Observe(0.5) // one slow outlier
	s := r.Snapshot()
	p50 := s.Quantile("lat_seconds", 0.50)
	p99 := s.Quantile("lat_seconds", 0.99)
	p999 := s.Quantile("lat_seconds", 0.999)
	if p50 > 0.002 {
		t.Fatalf("p50 = %g, want ≤ 2ms bucket bound", p50)
	}
	if p99 > 0.002 {
		t.Fatalf("p99 = %g, want ≤ 2ms bucket bound", p99)
	}
	if p999 < 0.5 {
		t.Fatalf("p99.9 = %g, want ≥ 0.5", p999)
	}
	if got := s.Quantile("missing", 0.99); got != 0 {
		t.Fatalf("quantile of missing metric = %g, want 0", got)
	}
}

func TestTraceSpansAndRingBound(t *testing.T) {
	r := New("gw")
	base := time.Date(1999, 8, 3, 9, 0, 0, 0, time.UTC)
	fake := base
	r.SetNow(func() time.Time { return fake })

	ctx := WithTrace(context.Background(), "abc123")
	if TraceFrom(ctx) != "abc123" {
		t.Fatalf("TraceFrom round trip failed")
	}
	if TraceFrom(context.Background()) != "" {
		t.Fatalf("TraceFrom on empty ctx should be empty")
	}

	sp := r.StartSpan(ctx, "gateway.dispatch").Note("MsgConsign")
	time.Sleep(2 * time.Millisecond) // wall-clock duration under frozen sim clock
	sp.End()
	sp.End() // idempotent

	// Untraced ctx records nothing and End on nil is safe.
	r.StartSpan(context.Background(), "noop").End()

	spans := r.Trace("abc123")
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	got := spans[0]
	if got.Name != "gateway.dispatch" || got.Origin != "gw" || got.Note != "MsgConsign" {
		t.Fatalf("span = %+v", got)
	}
	if !got.Start.Equal(base) {
		t.Fatalf("span start = %v, want registry clock %v", got.Start, base)
	}
	if got.Dur <= 0 {
		t.Fatalf("span duration = %v, want > 0 despite frozen clock", got.Dur)
	}

	// Ring bound: overflow keeps only the newest DefaultSpanCap spans.
	for i := 0; i < DefaultSpanCap+10; i++ {
		r.StartSpan(ctx, "hop").End()
	}
	all := r.Spans()
	if len(all) != DefaultSpanCap {
		t.Fatalf("ring holds %d spans, want %d", len(all), DefaultSpanCap)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("ring order broken at %d: %d then %d", i, all[i-1].Seq, all[i].Seq)
		}
	}
}

func TestSortSpansOrdersAcrossRegistries(t *testing.T) {
	t0 := time.Date(1999, 8, 3, 9, 0, 0, 0, time.UTC)
	spans := []Span{
		{Trace: "t", Origin: "njs/r1", Start: t0.Add(2 * time.Second), Seq: 1},
		{Trace: "t", Origin: "njs/r0", Start: t0, Seq: 2},
		{Trace: "t", Origin: "gateway", Start: t0, Seq: 1},
	}
	SortSpans(spans)
	if spans[0].Origin != "gateway" || spans[1].Origin != "njs/r0" || spans[2].Origin != "njs/r1" {
		t.Fatalf("sorted order = %v, %v, %v", spans[0].Origin, spans[1].Origin, spans[2].Origin)
	}
}

func TestFlushPlaintext(t *testing.T) {
	r := New("gw")
	r.Counter("pki_verify_total").Add(7)
	r.Histogram("verify_seconds", ScaleSeconds).Observe(0.001)
	var b strings.Builder
	if err := r.Snapshot().Flush(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# origin gw", "pki_verify_total 7", "verify_seconds_count 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestSnapshotJSONRoundTrip covers the MsgMetrics wire path: a snapshot with
// histograms must survive encoding/json even though the overflow bucket's
// upper bound is +Inf, which a naive float field would reject.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New("njs")
	r.Counter("consign_total", "vsite", "T3E").Add(3)
	r.Histogram("consign_ack_seconds", ScaleSeconds).Observe(0.25)
	in := r.Snapshot()
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var out Snapshot
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got := out.Total("consign_total"); got != 3 {
		t.Fatalf("consign_total = %v after round trip, want 3", got)
	}
	if got := out.HistCount("consign_ack_seconds"); got != 1 {
		t.Fatalf("consign_ack_seconds count = %d after round trip, want 1", got)
	}
	p, ok := out.Get("consign_ack_seconds")
	if !ok || len(p.Buckets) == 0 {
		t.Fatal("histogram buckets lost in round trip")
	}
	if last := p.Buckets[len(p.Buckets)-1].LE; !math.IsInf(last, 1) {
		t.Fatalf("overflow bucket bound = %v after round trip, want +Inf", last)
	}
}

func TestDebugServerServesMetricsAndPprof(t *testing.T) {
	r := New("gw")
	r.Counter("pki_verify_total").Inc()
	ds, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := ds.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	for path, want := range map[string]string{
		"/metrics":            "pki_verify_total 1",
		"/debug/pprof/symbol": "",
	} {
		resp, err := http.Get("http://" + ds.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		if err := resp.Body.Close(); err != nil {
			t.Fatalf("close body: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if want != "" && !strings.Contains(string(body), want) {
			t.Fatalf("GET %s missing %q:\n%s", path, want, body)
		}
	}
}
