package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Bucket is one histogram bucket: the count of observations at or below LE
// (and above the previous bucket's bound). The final bucket's LE is +Inf.
type Bucket struct {
	// LE is the bucket's inclusive upper bound in the metric's unit.
	LE float64 `json:"le"`
	// Count is the number of observations landing in this bucket.
	Count uint64 `json:"count"`
}

// bucketWire is Bucket's JSON form: LE travels as a string because
// encoding/json refuses non-finite floats and the overflow bucket's bound
// is +Inf.
type bucketWire struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// MarshalJSON encodes the bucket with a string bound ("+Inf" included).
func (b Bucket) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketWire{LE: strconv.FormatFloat(b.LE, 'g', -1, 64), Count: b.Count})
}

// UnmarshalJSON decodes the string-bound wire form.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var w bucketWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	le, err := strconv.ParseFloat(w.LE, 64)
	if err != nil {
		return fmt.Errorf("telemetry: bad bucket bound %q: %w", w.LE, err)
	}
	b.LE, b.Count = le, w.Count
	return nil
}

// MetricPoint is one metric's frozen state inside a Snapshot.
type MetricPoint struct {
	// Name is the metric name, e.g. "consign_ack_seconds".
	Name string `json:"name"`
	// Labels is the metric's label set, if any.
	Labels map[string]string `json:"labels,omitempty"`
	// Kind says how to read the remaining fields.
	Kind Kind `json:"kind"`
	// Value holds the counter total or gauge level.
	Value float64 `json:"value,omitempty"`
	// Count is the histogram observation count.
	Count uint64 `json:"count,omitempty"`
	// Sum is the histogram's running total.
	Sum float64 `json:"sum,omitempty"`
	// Buckets is the histogram's per-bucket breakdown.
	Buckets []Bucket `json:"buckets,omitempty"`

	sortKey string
}

// Snapshot is a frozen, serialisable copy of one registry (or a merge of
// several). It travels inside the v2 MsgMetrics reply and feeds the
// plaintext -debug-addr dump.
type Snapshot struct {
	// Origin names the component (or merged component set) sampled.
	Origin string `json:"origin"`
	// Taken is the registry-clock time of the sample.
	Taken time.Time `json:"taken"`
	// Metrics lists every metric sorted by name then labels.
	Metrics []MetricPoint `json:"metrics"`
	// Spans is the span ring's contents at sample time.
	Spans []Span `json:"spans,omitempty"`
}

// Get returns the point registered under name and the given key/value
// label pairs.
func (s Snapshot) Get(name string, kv ...string) (MetricPoint, bool) {
	want := key(name, labelMap(kv))
	for _, p := range s.Metrics {
		if key(p.Name, p.Labels) == want {
			return p, true
		}
	}
	return MetricPoint{}, false
}

// Total sums Value across every label set of a counter or gauge name.
func (s Snapshot) Total(name string) float64 {
	var t float64
	for _, p := range s.Metrics {
		if p.Name == name && p.Kind != KindHistogram {
			t += p.Value
		}
	}
	return t
}

// HistCount sums observation counts across every label set of a histogram
// name.
func (s Snapshot) HistCount(name string) uint64 {
	var n uint64
	for _, p := range s.Metrics {
		if p.Name == name && p.Kind == KindHistogram {
			n += p.Count
		}
	}
	return n
}

// Quantile estimates the q-quantile (0 < q <= 1) of a histogram by merging
// every label set of name and taking the upper bound of the bucket where
// the cumulative count crosses q. Returns 0 when the histogram is empty
// or absent.
func (s Snapshot) Quantile(name string, q float64) float64 {
	var merged []Bucket
	for _, p := range s.Metrics {
		if p.Name != name || p.Kind != KindHistogram {
			continue
		}
		merged = mergeBuckets(merged, p.Buckets)
	}
	var total uint64
	for _, b := range merged {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	want := uint64(math.Ceil(q * float64(total)))
	if want < 1 {
		want = 1
	}
	var cum uint64
	for i, b := range merged {
		cum += b.Count
		if cum >= want {
			if math.IsInf(b.LE, 1) && i > 0 {
				return merged[i-1].LE
			}
			return b.LE
		}
	}
	return merged[len(merged)-1].LE
}

// Trace returns the snapshot's spans matching one trace ID.
func (s Snapshot) Trace(id string) []Span {
	var out []Span
	for _, sp := range s.Spans {
		if sp.Trace == id {
			out = append(out, sp)
		}
	}
	return out
}

// mergeBuckets adds two bucket slices with identical layouts; a nil
// receiver adopts the other's layout.
func mergeBuckets(a, b []Bucket) []Bucket {
	if a == nil {
		out := make([]Bucket, len(b))
		copy(out, b)
		return out
	}
	if len(a) != len(b) {
		// Mismatched layouts cannot merge meaningfully; keep the larger.
		if len(b) > len(a) {
			return b
		}
		return a
	}
	for i := range a {
		a[i].Count += b[i].Count
	}
	return a
}

// Merge folds several snapshots into one under a new origin: counters and
// gauges sum per (name, labels), histograms merge bucket-by-bucket, and
// spans concatenate in cross-registry order. Inputs are not modified.
func Merge(origin string, snaps ...Snapshot) Snapshot {
	out := Snapshot{Origin: origin}
	byKey := make(map[string]*MetricPoint)
	var order []string
	for _, s := range snaps {
		if s.Taken.After(out.Taken) {
			out.Taken = s.Taken
		}
		for _, p := range s.Metrics {
			k := key(p.Name, p.Labels)
			dst, ok := byKey[k]
			if !ok {
				cp := p
				cp.Labels = copyLabels(p.Labels)
				cp.Buckets = mergeBuckets(nil, p.Buckets)
				byKey[k] = &cp
				order = append(order, k)
				continue
			}
			switch p.Kind {
			case KindHistogram:
				dst.Count += p.Count
				dst.Sum += p.Sum
				dst.Buckets = mergeBuckets(dst.Buckets, p.Buckets)
			default:
				dst.Value += p.Value
			}
		}
		out.Spans = append(out.Spans, s.Spans...)
	}
	sort.Strings(order)
	for _, k := range order {
		out.Metrics = append(out.Metrics, *byKey[k])
	}
	SortSpans(out.Spans)
	return out
}

// Flush writes the snapshot as a plaintext metrics dump (one
// "name{labels} value" line per metric, histograms as _count/_sum plus
// bucket lines, any spans as trailing "# span" comment lines). It is the
// format served at -debug-addr /metrics.
func (s Snapshot) Flush(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# origin %s\n", s.Origin); err != nil {
		return err
	}
	for _, p := range s.Metrics {
		lbl := formatLabels(p.Labels)
		var err error
		switch p.Kind {
		case KindHistogram:
			if _, err = fmt.Fprintf(w, "%s_count%s %d\n%s_sum%s %g\n", p.Name, lbl, p.Count, p.Name, lbl, p.Sum); err == nil {
				var cum uint64
				for _, b := range p.Buckets {
					if b.Count == 0 {
						continue
					}
					cum += b.Count
					if _, err = fmt.Fprintf(w, "%s_bucket%s le=%g %d\n", p.Name, lbl, b.LE, cum); err != nil {
						break
					}
				}
			}
		default:
			_, err = fmt.Fprintf(w, "%s%s %g\n", p.Name, lbl, p.Value)
		}
		if err != nil {
			return err
		}
	}
	for _, sp := range s.Spans {
		note := ""
		if sp.Note != "" {
			note = " note=" + sp.Note
		}
		if _, err := fmt.Fprintf(w, "# span trace=%s name=%s origin=%s dur=%s%s\n",
			sp.Trace, sp.Name, sp.Origin, sp.Dur, note); err != nil {
			return err
		}
	}
	return nil
}

// formatLabels renders a label set as {k="v",...} with sorted keys.
func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	ks := make([]string, 0, len(labels))
	for k := range labels {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range ks {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}
