package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// DefaultSpanCap bounds the per-registry span ring; the oldest spans are
// overwritten once the ring is full.
const DefaultSpanCap = 1024

// Span is one recorded hop of a distributed trace: which component did
// what, when (registry clock), and for how long (wall clock). Start comes
// from the registry clock so virtual-clock testbeds order hops on
// simulation time; Dur is always wall-measured so synchronous hops under a
// frozen simulated clock still report nonzero latencies.
type Span struct {
	// Trace is the request's trace ID as carried in the envelope header.
	Trace string `json:"trace"`
	// Name identifies the hop, e.g. "gateway.dispatch" or "njs.consign".
	Name string `json:"name"`
	// Origin is the recording registry's component label.
	Origin string `json:"origin"`
	// Note carries optional hop detail (message kind, replica tag, job ID).
	Note string `json:"note,omitempty"`
	// Seq orders spans recorded by the same registry.
	Seq uint64 `json:"seq"`
	// Start is the hop start on the registry clock.
	Start time.Time `json:"start"`
	// Dur is the wall-clock duration of the hop.
	Dur time.Duration `json:"dur"`
}

// spanRing is a bounded, mutex-guarded ring of completed spans.
type spanRing struct {
	mu   sync.Mutex
	seq  uint64
	buf  []Span
	next int
	full bool
}

// traceKey is the context key carrying the trace ID.
type traceKey struct{}

// WithTrace returns a context carrying the given trace ID; an empty ID
// returns ctx unchanged.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFrom extracts the trace ID from ctx, or "" when the request is
// untraced (v1 peer, background work).
func TraceFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// NewTraceID mints a 16-byte random trace ID in hex.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a constant
		// fallback keeps tracing best-effort rather than fatal.
		return "trace-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// ActiveSpan is an in-flight hop created by StartSpan; call End (or EndNote)
// exactly once. A nil ActiveSpan (untraced request) is safe to End.
type ActiveSpan struct {
	r     *Registry
	span  Span
	wall  time.Time
	ended bool
}

// StartSpan opens a hop for the trace carried by ctx. When ctx carries no
// trace ID it returns nil — recording is skipped entirely so untraced (v1)
// traffic pays nothing beyond the context lookup.
func (r *Registry) StartSpan(ctx context.Context, name string) *ActiveSpan {
	id := TraceFrom(ctx)
	if id == "" {
		return nil
	}
	return &ActiveSpan{
		r:    r,
		span: Span{Trace: id, Name: name, Origin: r.origin, Start: r.Now()},
		wall: time.Now(),
	}
}

// Note attaches hop detail (message kind, replica tag, job ID); later
// calls overwrite. Nil-safe.
func (s *ActiveSpan) Note(note string) *ActiveSpan {
	if s != nil {
		s.span.Note = note
	}
	return s
}

// End closes the hop and records it in the registry's span ring. Nil-safe
// and idempotent.
func (s *ActiveSpan) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.span.Dur = time.Since(s.wall)
	s.r.record(s.span)
}

// record appends a completed span to the bounded ring.
func (r *Registry) record(sp Span) {
	ring := &r.ring
	ring.mu.Lock()
	ring.seq++
	sp.Seq = ring.seq
	ring.buf[ring.next] = sp
	ring.next++
	if ring.next == len(ring.buf) {
		ring.next = 0
		ring.full = true
	}
	ring.mu.Unlock()
}

// Spans returns a copy of the ring's contents in recording order (oldest
// first).
func (r *Registry) Spans() []Span {
	ring := &r.ring
	ring.mu.Lock()
	defer ring.mu.Unlock()
	if !ring.full && ring.next == 0 {
		return nil
	}
	var out []Span
	if ring.full {
		out = make([]Span, 0, len(ring.buf))
		out = append(out, ring.buf[ring.next:]...)
		out = append(out, ring.buf[:ring.next]...)
	} else {
		out = append(out, ring.buf[:ring.next]...)
	}
	return out
}

// Trace returns this registry's spans for one trace ID, in recording order.
func (r *Registry) Trace(id string) []Span {
	var out []Span
	for _, sp := range r.Spans() {
		if sp.Trace == id {
			out = append(out, sp)
		}
	}
	return out
}

// SortSpans orders spans for cross-registry presentation: by start time,
// then origin, then per-registry sequence.
func SortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		if spans[i].Origin != spans[j].Origin {
			return spans[i].Origin < spans[j].Origin
		}
		return spans[i].Seq < spans[j].Seq
	})
}
