// Package telemetry is the stdlib-only observability substrate for the
// UNICORE reproduction: a lock-sharded metrics registry (counters, gauges,
// log-scale histograms) plus lightweight distributed tracing (a per-request
// trace ID carried in the protocol envelope header, with per-hop spans
// recorded in a bounded ring).
//
// Every tier owns one Registry whose Origin names the component
// ("gateway", "pool/CLUSTER", "njs/CLUSTER/r0", ...). Hot-path call sites
// cache *Counter/*Gauge/*Histogram handles once and update them with a
// single atomic op; the sharded map is only consulted on first lookup and
// during Snapshot. Snapshots are deep copies — safe to serialise and merge
// across replicas — and power the v2 MsgMetrics scrape protocol, the
// -debug-addr plaintext dump, and the testbed assertions.
//
// The registry clock is pluggable (SetNow) so virtual-clock testbeds stamp
// spans and snapshots on simulation time, while durations are always
// measured on the wall clock so per-hop timings stay nonzero even when the
// simulated clock does not advance during a synchronous call.
package telemetry

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the metric families a Registry can hold.
type Kind string

// Metric kinds as they appear in snapshots and the plaintext dump.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// nShards fixes the registry shard count; small powers of two keep the
// FNV-modulo cheap while spreading unrelated metric names across locks.
const nShards = 8

// Registry is a lock-sharded collection of named metrics plus a bounded
// span ring for distributed traces. The zero value is not usable; call New.
type Registry struct {
	origin string
	now    atomic.Value // func() time.Time
	shards [nShards]shard
	ring   spanRing
}

// shard is one lock stripe of the metric map.
type shard struct {
	mu      sync.RWMutex
	metrics map[string]*metricEntry
}

// metricEntry binds a parsed identity to the live instrument so Snapshot
// does not have to re-split keys.
type metricEntry struct {
	name   string
	labels map[string]string
	inst   instrument
}

// instrument is the common surface of Counter, Gauge and Histogram.
type instrument interface {
	kind() Kind
	point(name string, labels map[string]string) MetricPoint
}

// New returns an empty Registry whose snapshots carry the given origin
// label. The span ring holds the most recent DefaultSpanCap spans.
func New(origin string) *Registry {
	r := &Registry{origin: origin}
	r.now.Store(time.Now)
	r.ring.buf = make([]Span, DefaultSpanCap)
	for i := range r.shards {
		r.shards[i].metrics = make(map[string]*metricEntry)
	}
	return r
}

// Origin returns the component label stamped on snapshots and spans.
func (r *Registry) Origin() string { return r.origin }

// SetNow replaces the clock used to stamp spans and snapshots. Virtual
// clock testbeds point this at sim.Clock.Now; durations are unaffected
// (they are always wall-measured).
func (r *Registry) SetNow(now func() time.Time) { r.now.Store(now) }

// Now returns the registry clock's current time.
func (r *Registry) Now() time.Time { return r.now.Load().(func() time.Time)() }

// key builds the canonical shard-map key for a name and sorted label set.
func key(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	ks := make([]string, 0, len(labels))
	for k := range labels {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range ks {
		b.WriteByte(0xff)
		b.WriteString(k)
		b.WriteByte(0x01)
		b.WriteString(labels[k])
	}
	return b.String()
}

// labelMap folds variadic key/value pairs into a map; an odd trailing key
// gets an empty value rather than panicking on a hot path.
func labelMap(kv []string) map[string]string {
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]string, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		if i+1 < len(kv) {
			m[kv[i]] = kv[i+1]
		} else {
			m[kv[i]] = ""
		}
	}
	return m
}

// lookup returns the instrument registered under (name, labels), creating
// it with mk on first use. A Kind clash returns the existing instrument of
// the other kind's entry replaced by a fresh one under a disambiguated
// name, which never happens in practice because metric names are static.
func (r *Registry) lookup(name string, labels map[string]string, mk func() instrument) instrument {
	k := key(name, labels)
	h := fnv.New32a()
	h.Write([]byte(k))
	s := &r.shards[h.Sum32()%nShards]

	s.mu.RLock()
	e, ok := s.metrics[k]
	s.mu.RUnlock()
	if ok {
		return e.inst
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok = s.metrics[k]; ok {
		return e.inst
	}
	e = &metricEntry{name: name, labels: labels, inst: mk()}
	s.metrics[k] = e
	return e.inst
}

// Counter returns (creating on first use) the monotonically increasing
// counter registered under name and optional key/value label pairs.
// Callers on hot paths should cache the returned handle.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	return r.lookup(name, labelMap(kv), func() instrument { return &Counter{} }).(*Counter)
}

// Gauge returns (creating on first use) the settable gauge registered
// under name and optional key/value label pairs.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	return r.lookup(name, labelMap(kv), func() instrument { return &Gauge{} }).(*Gauge)
}

// Histogram returns (creating on first use) the log-scale histogram
// registered under name with the given bucket scale and optional key/value
// label pairs.
func (r *Registry) Histogram(name string, scale Scale, kv ...string) *Histogram {
	return r.lookup(name, labelMap(kv), func() instrument { return newHistogram(scale) }).(*Histogram)
}

// Counter counts events; all operations are a single atomic add.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) kind() Kind { return KindCounter }

func (c *Counter) point(name string, labels map[string]string) MetricPoint {
	return MetricPoint{Name: name, Labels: copyLabels(labels), Kind: KindCounter, Value: float64(c.v.Load())}
}

// Gauge holds an instantaneous signed level (queue depth, in-flight count).
type Gauge struct{ v atomic.Int64 }

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) kind() Kind { return KindGauge }

func (g *Gauge) point(name string, labels map[string]string) MetricPoint {
	return MetricPoint{Name: name, Labels: copyLabels(labels), Kind: KindGauge, Value: float64(g.v.Load())}
}

// copyLabels deep-copies a label map so snapshots cannot alias live state.
func copyLabels(m map[string]string) map[string]string {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// snapshotEntries collects a deep copy of every registered metric, sorted
// by name then label key for deterministic output.
func (r *Registry) snapshotEntries() []MetricPoint {
	var pts []MetricPoint
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for k, e := range s.metrics {
			p := e.inst.point(e.name, e.labels)
			p.sortKey = k
			pts = append(pts, p)
		}
		s.mu.RUnlock()
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].sortKey < pts[j].sortKey })
	for i := range pts {
		pts[i].sortKey = ""
	}
	return pts
}

// Snapshot returns a deep, self-consistent-enough copy of every metric and
// the current span ring. Counters sampled mid-update may be one event
// apart from each other, but no value in the snapshot ever changes after
// Snapshot returns.
func (r *Registry) Snapshot() Snapshot {
	return Snapshot{
		Origin:  r.origin,
		Taken:   r.Now(),
		Metrics: r.snapshotEntries(),
		Spans:   r.Spans(),
	}
}

// String identifies the registry in logs.
func (r *Registry) String() string { return fmt.Sprintf("telemetry.Registry(%s)", r.origin) }
