package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves net/http/pprof plus a plaintext metrics dump for the
// registries it was given. It backs the opt-in -debug-addr flag on
// unicore-gateway and unicore-njs.
type DebugServer struct {
	l   net.Listener
	srv *http.Server
}

// ServeDebug starts a debug HTTP server on addr (host:port; port 0 picks a
// free port) exposing /debug/pprof/* and /metrics (plaintext dump of every
// registry, one origin block per registry). The server runs until Close.
func ServeDebug(addr string, regs ...*Registry) (*DebugServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, r := range regs {
			if err := r.Snapshot().Flush(w); err != nil {
				return
			}
		}
	})
	ds := &DebugServer{l: l, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}}
	go func() {
		// Serve returns ErrServerClosed after Close; nothing to do with it.
		_ = ds.srv.Serve(l)
	}()
	return ds, nil
}

// Addr returns the bound listen address (useful with port 0).
func (d *DebugServer) Addr() string { return d.l.Addr().String() }

// Close shuts the debug server down and releases the listener.
func (d *DebugServer) Close() error { return d.srv.Close() }
