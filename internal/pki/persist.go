package pki

import (
	"crypto/ed25519"
	"crypto/x509"
	"encoding/pem"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file persists credentials and authorities as PEM so the cmd/ tools
// can run real multi-process deployments: the CA issues to files, gateways
// and users load their credentials from files (the paper's §5.2 "secure
// transfer of the user certificates" is out of scope — files stand in for
// the DFN-PCA distribution procedure).

// PEM block types.
const (
	pemCert  = "CERTIFICATE"
	pemKey   = "PRIVATE KEY"
	pemState = "UNICORE CA STATE"
)

// EncodePEM renders the credential as a certificate block followed by a
// PKCS#8 private-key block.
func (c *Credential) EncodePEM() ([]byte, error) {
	keyDER, err := x509.MarshalPKCS8PrivateKey(c.Key)
	if err != nil {
		return nil, fmt.Errorf("pki: encoding key: %w", err)
	}
	var out []byte
	out = append(out, pem.EncodeToMemory(&pem.Block{Type: pemCert, Bytes: c.Cert.Raw})...)
	out = append(out, pem.EncodeToMemory(&pem.Block{Type: pemKey, Bytes: keyDER})...)
	return out, nil
}

// DecodeCredentialPEM parses a credential written by EncodePEM. The role is
// recovered from the certificate subject.
func DecodeCredentialPEM(data []byte) (*Credential, error) {
	var cert *x509.Certificate
	var key ed25519.PrivateKey
	for {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			break
		}
		switch block.Type {
		case pemCert:
			c, err := x509.ParseCertificate(block.Bytes)
			if err != nil {
				return nil, fmt.Errorf("pki: parsing certificate: %w", err)
			}
			cert = c
		case pemKey:
			k, err := x509.ParsePKCS8PrivateKey(block.Bytes)
			if err != nil {
				return nil, fmt.Errorf("pki: parsing key: %w", err)
			}
			ed, ok := k.(ed25519.PrivateKey)
			if !ok {
				return nil, fmt.Errorf("pki: key is %T, want Ed25519", k)
			}
			key = ed
		}
	}
	if cert == nil || key == nil {
		return nil, errors.New("pki: credential PEM needs a certificate and a private key")
	}
	return &Credential{Role: CertRole(cert), Cert: cert, Key: key}, nil
}

// EncodePEM renders the authority: its certificate, key, and issuance state
// (serial counter and revocation list) in a state block's headers.
func (a *Authority) EncodePEM() ([]byte, error) {
	keyDER, err := x509.MarshalPKCS8PrivateKey(a.key)
	if err != nil {
		return nil, fmt.Errorf("pki: encoding CA key: %w", err)
	}
	a.mu.Lock()
	serial := a.serial
	revoked := make([]string, 0, len(a.revoked))
	for s, r := range a.revoked {
		if r {
			revoked = append(revoked, s)
		}
	}
	a.mu.Unlock()
	sort.Strings(revoked)

	var out []byte
	out = append(out, pem.EncodeToMemory(&pem.Block{Type: pemCert, Bytes: a.cert.Raw})...)
	out = append(out, pem.EncodeToMemory(&pem.Block{Type: pemKey, Bytes: keyDER})...)
	out = append(out, pem.EncodeToMemory(&pem.Block{
		Type: pemState,
		Headers: map[string]string{
			"name":    a.name,
			"serial":  strconv.FormatInt(serial, 10),
			"revoked": strings.Join(revoked, " "),
		},
	})...)
	return out, nil
}

// DecodeAuthorityPEM restores an authority written by EncodePEM.
func DecodeAuthorityPEM(data []byte) (*Authority, error) {
	var cert *x509.Certificate
	var key ed25519.PrivateKey
	state := map[string]string{}
	for {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			break
		}
		switch block.Type {
		case pemCert:
			c, err := x509.ParseCertificate(block.Bytes)
			if err != nil {
				return nil, fmt.Errorf("pki: parsing CA certificate: %w", err)
			}
			cert = c
		case pemKey:
			k, err := x509.ParsePKCS8PrivateKey(block.Bytes)
			if err != nil {
				return nil, fmt.Errorf("pki: parsing CA key: %w", err)
			}
			ed, ok := k.(ed25519.PrivateKey)
			if !ok {
				return nil, fmt.Errorf("pki: CA key is %T, want Ed25519", k)
			}
			key = ed
		case pemState:
			state = block.Headers
		}
	}
	if cert == nil || key == nil {
		return nil, errors.New("pki: authority PEM needs a certificate and a private key")
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	a := &Authority{
		name:    cert.Subject.CommonName,
		cert:    cert,
		key:     key,
		pool:    pool,
		serial:  1,
		revoked: map[string]bool{},
		ttl:     100 * 365 * 24 * 3600e9,
	}
	if n := state["name"]; n != "" {
		a.name = n
	}
	if s := state["serial"]; s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pki: bad CA serial %q: %w", s, err)
		}
		a.serial = v
	}
	if rv := strings.TrimSpace(state["revoked"]); rv != "" {
		for _, s := range strings.Fields(rv) {
			a.revoked[s] = true
		}
	}
	return a, nil
}
