package pki

import (
	"strings"
	"testing"
)

func TestCredentialPEMRoundTrip(t *testing.T) {
	ca, err := NewAuthority("RT-CA")
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	for _, issue := range []struct {
		name string
		fn   func() (*Credential, error)
		role Role
	}{
		{"user", func() (*Credential, error) { return ca.IssueUser("Pem User", "Org") }, RoleUser},
		{"server", func() (*Credential, error) { return ca.IssueServer("pem.server", "pem.host") }, RoleServer},
		{"software", func() (*Credential, error) { return ca.IssueSoftware("Pem Publisher") }, RoleSoftware},
	} {
		t.Run(issue.name, func(t *testing.T) {
			cred, err := issue.fn()
			if err != nil {
				t.Fatalf("issue: %v", err)
			}
			data, err := cred.EncodePEM()
			if err != nil {
				t.Fatalf("EncodePEM: %v", err)
			}
			back, err := DecodeCredentialPEM(data)
			if err != nil {
				t.Fatalf("DecodeCredentialPEM: %v", err)
			}
			if back.Role != issue.role {
				t.Fatalf("role = %s, want %s", back.Role, issue.role)
			}
			if back.DN() != cred.DN() {
				t.Fatalf("DN = %s, want %s", back.DN(), cred.DN())
			}
			// The restored key must still sign verifiably.
			sig, err := back.Sign([]byte("payload"))
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			if _, err := ca.VerifySignature([]byte("payload"), sig, issue.role); err != nil {
				t.Fatalf("VerifySignature: %v", err)
			}
		})
	}
}

func TestDecodeCredentialPEMErrors(t *testing.T) {
	if _, err := DecodeCredentialPEM(nil); err == nil {
		t.Fatal("decoded empty PEM")
	}
	if _, err := DecodeCredentialPEM([]byte("not pem at all")); err == nil {
		t.Fatal("decoded garbage")
	}
}

func TestAuthorityPEMRoundTrip(t *testing.T) {
	ca, err := NewAuthority("Persist-CA")
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	alice, err := ca.IssueUser("Alice", "Org")
	if err != nil {
		t.Fatalf("IssueUser: %v", err)
	}
	bob, err := ca.IssueUser("Bob", "Org")
	if err != nil {
		t.Fatalf("IssueUser: %v", err)
	}
	ca.Revoke(bob.Cert)

	data, err := ca.EncodePEM()
	if err != nil {
		t.Fatalf("EncodePEM: %v", err)
	}
	if !strings.Contains(string(data), "UNICORE CA STATE") {
		t.Fatal("state block missing")
	}
	back, err := DecodeAuthorityPEM(data)
	if err != nil {
		t.Fatalf("DecodeAuthorityPEM: %v", err)
	}
	if back.Name() != "Persist-CA" {
		t.Fatalf("name = %q", back.Name())
	}
	// Alice still verifies; Bob is still revoked.
	if _, err := back.VerifyCert(alice.Cert, RoleUser); err != nil {
		t.Fatalf("alice no longer verifies: %v", err)
	}
	if _, err := back.VerifyCert(bob.Cert, RoleUser); err == nil {
		t.Fatal("bob's revocation was lost")
	}
	// New issuance continues the serial sequence: no collision with alice.
	carol, err := back.IssueUser("Carol", "Org")
	if err != nil {
		t.Fatalf("IssueUser after restore: %v", err)
	}
	if carol.Cert.SerialNumber.Cmp(alice.Cert.SerialNumber) == 0 ||
		carol.Cert.SerialNumber.Cmp(bob.Cert.SerialNumber) == 0 {
		t.Fatalf("serial %s collides after restore", carol.Cert.SerialNumber)
	}
	if _, err := back.VerifyCert(carol.Cert, RoleUser); err != nil {
		t.Fatalf("carol does not verify: %v", err)
	}
}
