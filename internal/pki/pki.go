// Package pki implements the UNICORE security substrate: a certificate
// authority issuing X.509 certificates to users, servers, and software
// (paper §5.2 relies on "the existence of a Certificate Authority (CA) to
// generate the X.509v3 certificates for the server systems, the software
// developers, and the users"), TLS configurations for the https mutual
// authentication of §4.1, and detached signatures used to reproduce the
// "signed applet" trust mechanism.
//
// Keys are Ed25519: fast enough that tests can mint whole deployments, and
// fully supported by crypto/x509 and crypto/tls in the standard library.
package pki

import (
	"crypto"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"

	"unicore/internal/core"
)

// Errors reported by verification.
var (
	ErrRevoked      = errors.New("pki: certificate revoked")
	ErrBadSignature = errors.New("pki: signature verification failed")
	ErrUntrusted    = errors.New("pki: certificate not issued by a trusted CA")
	ErrWrongUsage   = errors.New("pki: certificate used outside its role")
)

// Role describes what a certificate is issued for. The paper distinguishes
// users, server systems, and software developers.
type Role string

const (
	RoleUser     Role = "user"
	RoleServer   Role = "server"
	RoleSoftware Role = "software"
)

// roleOID carries the role inside the certificate as an organizational unit.
func roleOU(r Role) string { return "unicore-" + string(r) }

// Credential couples a certificate with its private key.
type Credential struct {
	Role Role
	Cert *x509.Certificate
	Key  ed25519.PrivateKey
}

// DN returns the distinguished name of the certificate subject in the
// rendering used as the UNICORE user identification.
func (c *Credential) DN() core.DN {
	return SubjectDN(c.Cert)
}

// SubjectDN renders a certificate subject as a core.DN.
func SubjectDN(cert *x509.Certificate) core.DN {
	var org, country string
	if len(cert.Subject.Organization) > 0 {
		org = cert.Subject.Organization[0]
	}
	if len(cert.Subject.Country) > 0 {
		country = cert.Subject.Country[0]
	}
	return core.MakeDN(cert.Subject.CommonName, org, country)
}

// CertPEM renders the certificate in PEM form.
func (c *Credential) CertPEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: c.Cert.Raw})
}

// Authority is a certificate authority. It issues certificates, maintains a
// revocation list, and hands out the trust pool for verification.
//
// Verification is on every request's hot path (each envelope is checked
// against the CA), so the revocation list sits behind an RWMutex and the
// trust pool is built once: concurrent verifies never serialize on the CA.
type Authority struct {
	mu      sync.RWMutex
	name    string
	cert    *x509.Certificate
	key     ed25519.PrivateKey
	pool    *x509.CertPool
	serial  int64
	revoked map[string]bool // serial (decimal string) -> revoked
	ttl     time.Duration
}

// NewAuthority creates a self-signed CA, e.g. the DFN-PCA stand-in.
func NewAuthority(name string) (*Authority, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generating CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject: pkix.Name{
			CommonName:   name,
			Organization: []string{"UNICORE Certificate Authority"},
			Country:      []string{"DE"},
		},
		NotBefore:             time.Date(1998, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:              time.Date(2099, 1, 1, 0, 0, 0, 0, time.UTC),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, pub, priv)
	if err != nil {
		return nil, fmt.Errorf("pki: self-signing CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	return &Authority{
		name:    name,
		cert:    cert,
		key:     priv,
		pool:    pool,
		serial:  1,
		revoked: map[string]bool{},
		ttl:     100 * 365 * 24 * time.Hour,
	}, nil
}

// Name returns the CA's common name.
func (a *Authority) Name() string { return a.name }

// Certificate returns the CA certificate.
func (a *Authority) Certificate() *x509.Certificate { return a.cert }

// Pool returns the cert pool containing just this CA, for use as a TLS
// root. The pool is immutable and shared; callers must not add to it.
func (a *Authority) Pool() *x509.CertPool {
	return a.pool
}

// issue creates a certificate for the given subject and role.
func (a *Authority) issue(subject pkix.Name, role Role, dnsNames []string, usage x509.KeyUsage, ext []x509.ExtKeyUsage) (*Credential, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generating key: %w", err)
	}
	a.mu.Lock()
	a.serial++
	serial := a.serial
	a.mu.Unlock()
	subject.OrganizationalUnit = append(subject.OrganizationalUnit, roleOU(role))
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(serial),
		Subject:      subject,
		NotBefore:    a.cert.NotBefore,
		NotAfter:     a.cert.NotAfter,
		KeyUsage:     usage,
		ExtKeyUsage:  ext,
		DNSNames:     dnsNames,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, a.cert, pub, a.key)
	if err != nil {
		return nil, fmt.Errorf("pki: issuing certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Credential{Role: role, Cert: cert, Key: priv}, nil
}

// IssueUser issues a user certificate. The DN of this certificate is the
// user's unique UNICORE identification.
func (a *Authority) IssueUser(commonName, organisation string) (*Credential, error) {
	return a.issue(pkix.Name{
		CommonName:   commonName,
		Organization: []string{organisation},
		Country:      []string{"DE"},
	}, RoleUser, nil,
		x509.KeyUsageDigitalSignature,
		[]x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth})
}

// IssueServer issues a server certificate for a gateway or NJS host.
func (a *Authority) IssueServer(commonName string, dnsNames ...string) (*Credential, error) {
	if len(dnsNames) == 0 {
		dnsNames = []string{"localhost"}
	}
	return a.issue(pkix.Name{
		CommonName:   commonName,
		Organization: []string{"UNICORE"},
		Country:      []string{"DE"},
	}, RoleServer, dnsNames,
		x509.KeyUsageDigitalSignature|x509.KeyUsageKeyEncipherment,
		[]x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth})
}

// IssueSoftware issues a code-signing certificate for a software publisher
// (the consortium signing the JPA/JMC applets).
func (a *Authority) IssueSoftware(publisher string) (*Credential, error) {
	return a.issue(pkix.Name{
		CommonName:   publisher,
		Organization: []string{"UNICORE Software"},
		Country:      []string{"DE"},
	}, RoleSoftware, nil,
		x509.KeyUsageDigitalSignature,
		[]x509.ExtKeyUsage{x509.ExtKeyUsageCodeSigning})
}

// Revoke adds the credential's certificate to the revocation list.
func (a *Authority) Revoke(cert *x509.Certificate) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.revoked[cert.SerialNumber.String()] = true
}

// IsRevoked reports whether the certificate has been revoked.
func (a *Authority) IsRevoked(cert *x509.Certificate) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.revoked[cert.SerialNumber.String()]
}

// VerifyCert checks that cert chains to this CA, has the expected role, and
// is not revoked. It returns the subject DN on success.
func (a *Authority) VerifyCert(cert *x509.Certificate, want Role) (core.DN, error) {
	if _, err := cert.Verify(x509.VerifyOptions{
		Roots:     a.Pool(),
		KeyUsages: []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	}); err != nil {
		return "", fmt.Errorf("%w: %v", ErrUntrusted, err)
	}
	if a.IsRevoked(cert) {
		return "", fmt.Errorf("%w: serial %s", ErrRevoked, cert.SerialNumber)
	}
	if want != "" && !hasRole(cert, want) {
		return "", fmt.Errorf("%w: want role %s", ErrWrongUsage, want)
	}
	return SubjectDN(cert), nil
}

func hasRole(cert *x509.Certificate, want Role) bool {
	for _, ou := range cert.Subject.OrganizationalUnit {
		if ou == roleOU(want) {
			return true
		}
	}
	return false
}

// CertRole extracts the role recorded in the certificate, or "".
func CertRole(cert *x509.Certificate) Role {
	for _, r := range []Role{RoleUser, RoleServer, RoleSoftware} {
		if hasRole(cert, r) {
			return r
		}
	}
	return ""
}

// --- Detached signatures (signed applets, signed AJOs) ---

// Signature is a detached signature over a payload, carrying the signer's
// certificate so the receiver can verify the chain and identity. This is the
// reproduction of Netscape object signing for the JPA/JMC applets.
type Signature struct {
	CertDER []byte // signer certificate, DER
	Sig     []byte // Ed25519 signature over the payload
}

// Sign produces a detached signature over payload.
func (c *Credential) Sign(payload []byte) (Signature, error) {
	sig, err := c.Key.Sign(rand.Reader, payload, crypto.Hash(0))
	if err != nil {
		return Signature{}, fmt.Errorf("pki: signing: %w", err)
	}
	return Signature{CertDER: c.Cert.Raw, Sig: sig}, nil
}

// VerifySignature checks the detached signature against the payload, verifies
// the embedded certificate against the CA with the expected role, and returns
// the signer's DN.
func (a *Authority) VerifySignature(payload []byte, s Signature, want Role) (core.DN, error) {
	cert, err := x509.ParseCertificate(s.CertDER)
	if err != nil {
		return "", fmt.Errorf("pki: parsing signer certificate: %w", err)
	}
	dn, err := a.VerifyCert(cert, want)
	if err != nil {
		return "", err
	}
	pub, ok := cert.PublicKey.(ed25519.PublicKey)
	if !ok {
		return "", fmt.Errorf("%w: non-Ed25519 signer key", ErrBadSignature)
	}
	if !ed25519.Verify(pub, payload, s.Sig) {
		return "", ErrBadSignature
	}
	return dn, nil
}

// --- TLS configuration (the https of §4.1/§5.2) ---

// tlsCert converts a credential to a tls.Certificate.
func tlsCert(c *Credential) tls.Certificate {
	return tls.Certificate{
		Certificate: [][]byte{c.Cert.Raw},
		PrivateKey:  c.Key,
		Leaf:        c.Cert,
	}
}

// ServerTLS builds the TLS config for a UNICORE server: it presents the
// server certificate and *requires* a client certificate chaining to the CA
// — the mutual authentication of the SSL handshake in §4.1.
func ServerTLS(server *Credential, ca *Authority) *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{tlsCert(server)},
		ClientAuth:   tls.RequireAndVerifyClientCert,
		ClientCAs:    ca.Pool(),
		MinVersion:   tls.VersionTLS13,
	}
}

// ClientTLS builds the TLS config for a user or peer server connecting to a
// gateway: it presents the client certificate and validates the server
// against the CA.
func ClientTLS(client *Credential, ca *Authority) *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{tlsCert(client)},
		RootCAs:      ca.Pool(),
		MinVersion:   tls.VersionTLS13,
	}
}
