package pki

import (
	"crypto/tls"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"unicore/internal/core"
)

func newCA(t *testing.T) *Authority {
	t.Helper()
	ca, err := NewAuthority("Test-PCA")
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func TestIssueUserDN(t *testing.T) {
	ca := newCA(t)
	cred, err := ca.IssueUser("Alice Example", "FZ Juelich")
	if err != nil {
		t.Fatal(err)
	}
	want := core.MakeDN("Alice Example", "FZ Juelich", "DE")
	if cred.DN() != want {
		t.Fatalf("DN = %q, want %q", cred.DN(), want)
	}
	if cred.Role != RoleUser {
		t.Fatalf("Role = %q", cred.Role)
	}
}

func TestVerifyCertRoles(t *testing.T) {
	ca := newCA(t)
	user, _ := ca.IssueUser("U", "O")
	server, _ := ca.IssueServer("gw.fzj.de")
	soft, _ := ca.IssueSoftware("UNICORE Consortium")

	if _, err := ca.VerifyCert(user.Cert, RoleUser); err != nil {
		t.Errorf("user as user: %v", err)
	}
	if _, err := ca.VerifyCert(user.Cert, RoleServer); !errors.Is(err, ErrWrongUsage) {
		t.Errorf("user as server: %v", err)
	}
	if _, err := ca.VerifyCert(server.Cert, RoleServer); err != nil {
		t.Errorf("server as server: %v", err)
	}
	if _, err := ca.VerifyCert(soft.Cert, RoleSoftware); err != nil {
		t.Errorf("software as software: %v", err)
	}
	if got := CertRole(soft.Cert); got != RoleSoftware {
		t.Errorf("CertRole = %q", got)
	}
}

func TestVerifyCertRejectsForeignCA(t *testing.T) {
	ca1 := newCA(t)
	ca2 := newCA(t)
	cred, _ := ca2.IssueUser("Mallory", "Elsewhere")
	if _, err := ca1.VerifyCert(cred.Cert, RoleUser); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("foreign cert accepted: %v", err)
	}
}

func TestRevocation(t *testing.T) {
	ca := newCA(t)
	cred, _ := ca.IssueUser("Bob", "RUS")
	if _, err := ca.VerifyCert(cred.Cert, RoleUser); err != nil {
		t.Fatal(err)
	}
	ca.Revoke(cred.Cert)
	if _, err := ca.VerifyCert(cred.Cert, RoleUser); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked cert accepted: %v", err)
	}
	if !ca.IsRevoked(cred.Cert) {
		t.Fatal("IsRevoked = false")
	}
}

func TestDetachedSignatureRoundTrip(t *testing.T) {
	ca := newCA(t)
	signer, _ := ca.IssueSoftware("UNICORE Consortium")
	payload := []byte("the JPA applet bytes")
	sig, err := signer.Sign(payload)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := ca.VerifySignature(payload, sig, RoleSoftware)
	if err != nil {
		t.Fatal(err)
	}
	if dn.CommonName() != "UNICORE Consortium" {
		t.Fatalf("signer DN = %q", dn)
	}
}

func TestTamperedPayloadRejected(t *testing.T) {
	ca := newCA(t)
	signer, _ := ca.IssueSoftware("Pub")
	payload := []byte("applet v1")
	sig, _ := signer.Sign(payload)
	payload[0] ^= 0xff
	if _, err := ca.VerifySignature(payload, sig, RoleSoftware); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered payload accepted: %v", err)
	}
}

func TestSignatureRoleEnforced(t *testing.T) {
	ca := newCA(t)
	user, _ := ca.IssueUser("U", "O")
	payload := []byte("data")
	sig, _ := user.Sign(payload)
	// A user signature is fine when a user is expected...
	if _, err := ca.VerifySignature(payload, sig, RoleUser); err != nil {
		t.Fatal(err)
	}
	// ...but must not pass as software (applet) provenance.
	if _, err := ca.VerifySignature(payload, sig, RoleSoftware); !errors.Is(err, ErrWrongUsage) {
		t.Fatalf("user cert accepted as software signer: %v", err)
	}
}

func TestSignatureFromRevokedCertRejected(t *testing.T) {
	ca := newCA(t)
	signer, _ := ca.IssueSoftware("Pub")
	payload := []byte("applet")
	sig, _ := signer.Sign(payload)
	ca.Revoke(signer.Cert)
	if _, err := ca.VerifySignature(payload, sig, RoleSoftware); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked signer accepted: %v", err)
	}
}

func TestCertPEM(t *testing.T) {
	ca := newCA(t)
	cred, _ := ca.IssueUser("P", "O")
	pemBytes := cred.CertPEM()
	if len(pemBytes) == 0 || string(pemBytes[:10]) != "-----BEGIN" {
		t.Fatalf("CertPEM output malformed: %q", pemBytes[:20])
	}
}

func TestSerialsUnique(t *testing.T) {
	ca := newCA(t)
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		c, err := ca.IssueUser("U", "O")
		if err != nil {
			t.Fatal(err)
		}
		s := c.Cert.SerialNumber.String()
		if seen[s] {
			t.Fatalf("duplicate serial %s", s)
		}
		seen[s] = true
	}
}

// TestMutualTLSHandshake exercises the full §4.1 handshake over a real
// socket: the server presents its certificate, then requires and verifies
// the user certificate.
func TestMutualTLSHandshake(t *testing.T) {
	ca := newCA(t)
	server, _ := ca.IssueServer("gw.test", "localhost", "127.0.0.1")
	user, _ := ca.IssueUser("Alice", "FZJ")

	ln, err := tls.Listen("tcp", "127.0.0.1:0", ServerTLS(server, ca))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var peerCN string
	var serverErr error
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			serverErr = err
			return
		}
		defer conn.Close()
		tc := conn.(*tls.Conn)
		if err := tc.Handshake(); err != nil {
			serverErr = err
			return
		}
		peerCN = tc.ConnectionState().PeerCertificates[0].Subject.CommonName
		_, _ = io.WriteString(conn, "ok")
	}()

	cfg := ClientTLS(user, ca)
	cfg.ServerName = "localhost"
	conn, err := tls.Dial("tcp", ln.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	wg.Wait()
	if serverErr != nil {
		t.Fatal(serverErr)
	}
	if peerCN != "Alice" {
		t.Fatalf("server saw peer CN %q, want Alice", peerCN)
	}
}

// TestMutualTLSRejectsCertlessClient verifies a client without a certificate
// cannot get past the gateway handshake.
func TestMutualTLSRejectsCertlessClient(t *testing.T) {
	ca := newCA(t)
	server, _ := ca.IssueServer("gw.test", "localhost", "127.0.0.1")

	ln, err := tls.Listen("tcp", "127.0.0.1:0", ServerTLS(server, ca))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			tc := conn.(*tls.Conn)
			_ = tc.Handshake()
			conn.Close()
		}
	}()

	cfg := &tls.Config{RootCAs: ca.Pool(), ServerName: "localhost", MinVersion: tls.VersionTLS13}
	conn, err := tls.Dial("tcp", ln.Addr().String(), cfg)
	if err == nil {
		// Under TLS 1.3 the server's rejection surfaces on first read.
		_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 1)
		_, err = conn.Read(buf)
		conn.Close()
	}
	if err == nil {
		t.Fatal("certificate-less client was accepted")
	}
}
