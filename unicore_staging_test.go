package unicore_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"unicore"
	"unicore/internal/ajo"
)

// stagingPayload returns n deterministic, position-dependent bytes.
func stagingPayload(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*17 + i/263)
	}
	return out
}

// TestStagedImportKeepsConsignEnvelopeSmall is the bulk-staging acceptance
// check: a ≥16 MiB input travels ahead of the AJO through the chunked upload
// engine, so the consigned job serialises to a few kilobytes — where the
// seed's inline path blew the payload (base64-inflated) into one giant
// signed consign envelope. The staged job then runs end to end and the
// result streams back byte-exact.
func TestStagedImportKeepsConsignEnvelopeSmall(t *testing.T) {
	const size = 16 << 20
	payload := stagingPayload(size)

	// Inline baseline: the payload dominates the serialised AJO.
	ib := unicore.NewJob("inline", unicore.Target{Usite: "DEMO", Vsite: "CLUSTER"})
	ib.ImportBytes("stage", payload, "in.dat")
	inlineJob, err := ib.Build()
	if err != nil {
		t.Fatalf("Build(inline): %v", err)
	}
	inlineRaw, err := ajo.Marshal(inlineJob)
	if err != nil {
		t.Fatalf("Marshal(inline): %v", err)
	}
	if len(inlineRaw) < size {
		t.Fatalf("inline AJO serialises to %d bytes — expected the %d-byte payload inside", len(inlineRaw), size)
	}

	d, err := unicore.SingleSite("DEMO", "CLUSTER", 8)
	if err != nil {
		t.Fatalf("SingleSite: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Bulk User", "Demo Org", "bulk")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	sess := d.Session(user, "DEMO")
	ctx := context.Background()

	handle, err := sess.Upload(ctx, "CLUSTER", "in.dat", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}
	sb := unicore.NewJob("staged", unicore.Target{Usite: "DEMO", Vsite: "CLUSTER"})
	imp := sb.ImportStaged("stage", handle, "in.dat")
	run := sb.Script("copy", "cat in.dat > out.dat\n",
		unicore.ResourceRequest{Processors: 1, RunTime: time.Hour})
	sb.After(imp, run)
	stagedJob, err := sb.Build()
	if err != nil {
		t.Fatalf("Build(staged): %v", err)
	}
	stagedRaw, err := ajo.Marshal(stagedJob)
	if err != nil {
		t.Fatalf("Marshal(staged): %v", err)
	}
	if len(stagedRaw) > 64<<10 {
		t.Fatalf("staged AJO serialises to %d bytes — the payload still travels inline", len(stagedRaw))
	}
	t.Logf("consign envelope payload: inline %d bytes → staged %d bytes", len(inlineRaw), len(stagedRaw))

	id, err := sess.Submit(ctx, stagedJob)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	d.Run(10_000_000)
	sum, err := sess.Status(ctx, id)
	if err != nil || sum.Status != unicore.StatusSuccessful {
		t.Fatalf("staged job finished %s (%v)", sum.Status, err)
	}
	var got bytes.Buffer
	if _, err := sess.Download(ctx, id, "out.dat", &got); err != nil {
		t.Fatalf("Download: %v", err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("downloaded %d bytes differ from the %d-byte staged input", got.Len(), size)
	}
}
