package unicore_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"unicore"
	"unicore/internal/accounting"
	"unicore/internal/client"
	"unicore/internal/gateway"
	"unicore/internal/protocol"
)

// TestPublicQuickstart runs the README's quickstart flow end to end against
// the public facade only.
func TestPublicQuickstart(t *testing.T) {
	d, err := unicore.SingleSite("DEMO", "CLUSTER", 8)
	if err != nil {
		t.Fatalf("SingleSite: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Jane Doe", "Demo Org", "jdoe")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	b := unicore.NewJob("hello", unicore.Target{Usite: "DEMO", Vsite: "CLUSTER"})
	run := b.Script("greet", "echo hello unicore\n", unicore.ResourceRequest{Processors: 1, RunTime: time.Minute})
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	id, err := d.JPA(user).Submit(job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	d.Run(100000)
	sum, err := d.JMC(user).Status("DEMO", id)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if sum.Status != unicore.StatusSuccessful {
		t.Fatalf("status = %s", sum.Status)
	}
	o, err := d.JMC(user).Outcome("DEMO", id)
	if err != nil {
		t.Fatalf("Outcome: %v", err)
	}
	task, ok := o.Find(run)
	if !ok || !strings.Contains(string(task.Stdout), "hello unicore") {
		t.Fatalf("task output = %q", task.Stdout)
	}
}

// TestSessionQuickstart runs the README's session flow against the public
// facade: Dial/Session, context-aware submit, Watch for the event stream,
// and Await for the terminal summary — no polling anywhere.
func TestSessionQuickstart(t *testing.T) {
	d, err := unicore.SingleSite("DEMO", "CLUSTER", 8)
	if err != nil {
		t.Fatalf("SingleSite: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Jane Doe", "Demo Org", "jdoe")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	b := unicore.NewJob("hello", unicore.Target{Usite: "DEMO", Vsite: "CLUSTER"})
	b.Script("greet", "echo hello unicore\n", unicore.ResourceRequest{Processors: 1, RunTime: time.Minute})
	job, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ctx := context.Background()
	// == d.Session(user, "DEMO"); a real deployment would Dial the gateway
	// URL with WithIdentity instead of reusing the testbed client.
	sess, err := unicore.Dial("", unicore.WithClient(d.UserClient(user)), unicore.WithSite("DEMO"))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	id, err := sess.Submit(ctx, job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	watch, err := sess.Watch(ctx, id)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	go d.Run(100000)
	var last unicore.JobEvent
	n := 0
	for ev := range watch {
		last = ev
		n++
	}
	if n == 0 || !last.Terminal || last.Status != unicore.StatusSuccessful {
		t.Fatalf("watched %d events, last = %+v; want a successful terminal event", n, last)
	}
	sum, err := sess.Await(ctx, id)
	if err != nil {
		t.Fatalf("Await: %v", err)
	}
	if sum.Status != unicore.StatusSuccessful {
		t.Fatalf("Await status = %s", sum.Status)
	}
}

// TestGermanWorkloadEndToEnd drives a mixed workload through the full
// six-site deployment and checks completion plus accounting consistency.
func TestGermanWorkloadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed run")
	}
	d, err := unicore.German()
	if err != nil {
		t.Fatalf("German: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Workload User", "GCS", "wl")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	jpa, jmc := d.JPA(user), d.JMC(user)

	jobs, err := unicore.GenerateWorkload(unicore.DefaultWorkload(1999, 24, d.Targets()))
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	type placed struct {
		id unicore.JobID
		us unicore.Usite
	}
	var all []placed
	for _, j := range jobs {
		id, err := jpa.Submit(j)
		if err != nil {
			t.Fatalf("Submit %s: %v", j.Name(), err)
		}
		all = append(all, placed{id, j.Target.Usite})
	}
	d.Run(20_000_000)

	for _, p := range all {
		sum, err := jmc.Status(p.us, p.id)
		if err != nil {
			t.Fatalf("Status %s: %v", p.id, err)
		}
		if sum.Status != unicore.StatusSuccessful {
			o, _ := jmc.Outcome(p.us, p.id)
			t.Fatalf("job %s at %s finished %s:\n%s", p.id, p.us, sum.Status, unicore.Display(o))
		}
	}

	recs := d.Accounting()
	sum := accounting.Summarise(recs)
	if sum.Failed != 0 || sum.Cancelled != 0 {
		t.Fatalf("accounting: %+v", sum)
	}
	if sum.Jobs < len(jobs) {
		t.Fatalf("accounting records = %d, want >= %d", sum.Jobs, len(jobs))
	}
	if sum.Charge <= 0 {
		t.Fatal("no charge accumulated")
	}
}

// TestSecurityProperties exercises the trust boundaries end to end: revoked
// users, cross-user isolation, forged identities, and applet tampering.
func TestSecurityProperties(t *testing.T) {
	d, err := unicore.SingleSite("SEC", "CLUSTER", 4)
	if err != nil {
		t.Fatalf("SingleSite: %v", err)
	}
	defer d.Close()
	alice, err := d.NewUser("Alice", "Org", "alice")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	eve, err := d.NewUser("Eve", "Org", "eve")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}

	b := unicore.NewJob("secret", unicore.Target{Usite: "SEC", Vsite: "CLUSTER"})
	b.Script("s", "echo secret result\n", unicore.ResourceRequest{Processors: 1, RunTime: time.Minute})
	job, _ := b.Build()
	id, err := d.JPA(alice).Submit(job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	d.Run(100000)

	// Eve cannot see or control Alice's job.
	if _, err := d.JMC(eve).Outcome("SEC", id); err == nil {
		t.Fatal("eve read alice's outcome")
	}
	if err := d.JMC(eve).Abort("SEC", id); err == nil {
		t.Fatal("eve aborted alice's job")
	}
	// Revocation locks Alice out everywhere.
	d.CA.Revoke(alice.Cert)
	if _, err := d.JMC(alice).Status("SEC", id); err == nil {
		t.Fatal("revoked alice still served")
	}

	// Applets: Eve cannot forge consortium software.
	if _, err := gateway.SignApplet(eve, "jpa", "6.6", []byte("trojan")); err == nil {
		t.Fatal("user credential signed an applet")
	}
	// Fetching a genuine applet still verifies for Eve.
	if _, err := client.FetchApplet(d.UserClient(eve), d.CA, "SEC", "jpa"); err != nil {
		t.Fatalf("genuine applet failed verification: %v", err)
	}
}

// TestLoadEndpointThroughFacade checks the broker's load input end to end.
func TestLoadEndpointThroughFacade(t *testing.T) {
	d, err := unicore.SingleSite("LB", "CLUSTER", 8)
	if err != nil {
		t.Fatalf("SingleSite: %v", err)
	}
	defer d.Close()
	user, err := d.NewUser("Load User", "Org", "lu")
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	br := unicore.NewBroker(unicore.LeastLoaded)
	if err := br.Refresh(d.UserClient(user), d.Usites()...); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	target, err := br.Choose(unicore.ResourceRequest{Processors: 4, RunTime: time.Hour})
	if err != nil {
		t.Fatalf("Choose: %v", err)
	}
	if target != (unicore.Target{Usite: "LB", Vsite: "CLUSTER"}) {
		t.Fatalf("target = %s", target)
	}
}

// TestProtocolRobustnessClaim verifies the §5.3 claim outside the bench:
// under a lossy link, the asynchronous protocol completes more interactions
// than the synchronous baseline.
func TestProtocolRobustnessClaim(t *testing.T) {
	res := protocol.SimulateRobustness(protocol.RobustnessConfig{
		Seed:        7,
		Trials:      400,
		JobDuration: 10 * time.Minute,
		// One expected failure per 10 connection-minutes: fatal for a
		// connection held across the whole job, harmless for short polls.
		Link: protocol.LinkModel{FailureRate: 1.0 / 600, MsgTime: 200 * time.Millisecond},
	})
	async := res.Async.CompletionRate()
	if async < 0.99 {
		t.Fatalf("async completion = %.3f, want ~1.0", async)
	}
	// At this failure rate retries eventually push both completion rates to
	// ~1, but the synchronous protocol pays for every broken connection with
	// a full re-run, so its mean wall time per job is strictly worse; the
	// async variant loses only short poll messages.
	if res.Sync.MeanWall() <= res.Async.MeanWall() {
		t.Fatalf("sync mean wall %s not worse than async %s on a lossy link",
			res.Sync.MeanWall(), res.Async.MeanWall())
	}
	if res.Sync.JobExecutions <= res.Async.JobExecutions {
		t.Fatalf("sync re-ran %d jobs, async %d — resubmission should redo work",
			res.Sync.JobExecutions, res.Async.JobExecutions)
	}
}
