module unicore

go 1.24
