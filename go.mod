module unicore

go 1.23
