// Package unicore is a Go reproduction of the UNICORE architecture —
// "seamless access to distributed resources" (M. Romberg, HPDC-8, 1999).
//
// UNICORE is a three-tier grid middleware. At the user tier, the Job
// Preparation Agent builds abstract, system-independent jobs and the Job
// Monitor Controller tracks them. At the server tier, each computer centre
// (Usite) runs a gateway — an https endpoint doing X.509 authentication and
// certificate-to-login mapping — and a Network Job Supervisor (NJS) that
// translates ("incarnates") abstract jobs into real batch jobs, schedules
// their dependency graph, stages data, and exchanges job groups with peer
// sites. At the batch tier, each execution system (Vsite) runs its native
// resource-management system, reproduced here by a deterministic
// discrete-event batch simulator with the 1999 machine inventory (Cray T3E,
// Fujitsu VPP/700, IBM SP-2, NEC SX-4).
//
// This package is the public facade: it re-exports the user-level API so a
// downstream program can build jobs, deploy in-process testbeds, submit,
// monitor, and broker without reaching into the internal packages.
//
//	d, _ := unicore.SingleSite("DEMO", "CLUSTER", 8)
//	user, _ := d.NewUser("Jane Doe", "Demo Org", "jdoe")
//	b := unicore.NewJob("hello", unicore.Target{Usite: "DEMO", Vsite: "CLUSTER"})
//	b.Script("greet", "echo hello\n", unicore.ResourceRequest{Processors: 1})
//	job, _ := b.Build()
//	id, _ := d.JPA(user).Submit(job)
//	d.Run(100000) // drive the virtual clock
//	sum, _ := d.JMC(user).Status("DEMO", id)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced figures and claims.
package unicore

import (
	"errors"
	"fmt"
	"net/url"

	"unicore/internal/ajo"
	"unicore/internal/asi"
	"unicore/internal/broker"
	"unicore/internal/client"
	"unicore/internal/core"
	"unicore/internal/gateway"
	"unicore/internal/journal"
	"unicore/internal/pki"
	"unicore/internal/pool"
	"unicore/internal/protocol"
	"unicore/internal/resources"
	"unicore/internal/staging"
	"unicore/internal/testbed"
)

// Identity and addressing vocabulary (paper §4).
type (
	// Usite names a UNICORE site — a computer centre with a gateway and NJS.
	Usite = core.Usite
	// Vsite names an execution system within a Usite.
	Vsite = core.Vsite
	// Target addresses a Vsite globally as Usite/Vsite.
	Target = core.Target
	// JobID identifies a consigned UNICORE job.
	JobID = core.JobID
	// DN is a certificate distinguished name — the unique UNICORE user-id.
	DN = core.DN
)

// Job model (paper §5.3, Figure 3).
type (
	// AbstractJob is the recursive AJO job group.
	AbstractJob = ajo.AbstractJob
	// Outcome carries the status and results of an abstract action.
	Outcome = ajo.Outcome
	// Status is the state of an action (the JMC icon colours).
	Status = ajo.Status
	// Summary is the compact job status the JMC polls.
	Summary = ajo.Summary
	// ActionID identifies one action within a job.
	ActionID = ajo.ActionID
)

// Status values.
const (
	StatusPending    = ajo.StatusPending
	StatusQueued     = ajo.StatusQueued
	StatusRunning    = ajo.StatusRunning
	StatusSuccessful = ajo.StatusSuccessful
	StatusFailed     = ajo.StatusFailed
	StatusNotDone    = ajo.StatusNotDone
	StatusAborted    = ajo.StatusAborted
)

// Resource model (paper §5.4).
type (
	// ResourceRequest is a task's resource demand.
	ResourceRequest = resources.Request
	// ResourcePage describes a Vsite's capabilities and software.
	ResourcePage = resources.Page
)

// User tier (paper §4.1).
type (
	// Builder assembles abstract jobs the way the JPA GUI does.
	Builder = client.Builder
	// JPA is the job preparation agent.
	JPA = client.JPA
	// JMC is the job monitor controller.
	JMC = client.JMC
	// Credential couples an X.509 certificate with its key.
	Credential = pki.Credential
	// Authority is the certification authority whose certificates the mutual
	// TLS handshake trusts (the paper's §4.2 "UNICORE CA").
	Authority = pki.Authority
	// Client is the signed-envelope protocol client underneath JPA and JMC;
	// the broker refreshes its load information through one.
	Client = protocol.Client
	// Transport carries envelopes (and, against a v3 peer, the persistent
	// frame stream) to a gateway: protocol.NewHTTPTransport for real
	// deployments, a Deployment's in-process network for testbeds.
	Transport = protocol.Transport
	// Session is the protocol-v2 client handle: context-aware
	// submit/monitor/control for one user at one Usite, with server-push job
	// event streams (Session.Watch / Session.Await) replacing interval
	// polling. Open one with Dial or Deployment.Session.
	Session = client.Session
	// JobEvent is one server-push job lifecycle notification delivered by
	// Session.Watch.
	JobEvent = client.JobEvent
)

// DialOption configures one Dial.
type DialOption func(*dialConfig)

type dialConfig struct {
	usite     Usite
	cred      *Credential
	ca        *Authority
	tr        Transport
	client    *Client
	version   int
	retries   int
	noStreams bool
}

// WithIdentity sets the caller's credential and the certification authority
// gateway certificates are validated against — the two halves of the mutual
// TLS handshake and the envelope signatures. Required unless WithClient
// supplies a fully built client.
func WithIdentity(cred *Credential, ca *Authority) DialOption {
	return func(c *dialConfig) { c.cred, c.ca = cred, ca }
}

// WithSite names the Usite behind the dialled URL explicitly. Without it the
// URL's hostname is the site name — right for real deployments where gateways
// are addressed by their site's DNS name.
func WithSite(usite Usite) DialOption {
	return func(c *dialConfig) { c.usite = usite }
}

// WithTransport substitutes the transport under the client — an in-process
// testbed network, a fault-injection wrapper (protocol.Flaky), or a
// custom-configured protocol.HTTPTransport. The default is the mutual-TLS
// HTTP transport built from the WithIdentity credential; it serves both the
// signed-envelope POSTs and the v3 stream upgrade.
func WithTransport(tr Transport) DialOption {
	return func(c *dialConfig) { c.tr = tr }
}

// WithVersion caps the protocol version the session negotiates (1, 2, or 3).
// Pinning below 3 keeps every call on the signed-envelope POST path exactly
// as a pre-v3 client would send it.
func WithVersion(max int) DialOption {
	return func(c *dialConfig) { c.version = max }
}

// WithRetries sets the number of additional attempts after a transport
// failure (default 2; the asynchronous protocol makes retries safe).
func WithRetries(n int) DialOption {
	return func(c *dialConfig) { c.retries = n }
}

// WithClient reuses an existing protocol client — its identity, negotiated
// site versions, live streams, and registry — instead of building a fresh
// one. The dialled URL is added to its registry.
func WithClient(c *Client) DialOption {
	return func(cfg *dialConfig) { cfg.client = c }
}

// WithoutStreams keeps every call on the per-request envelope path even
// against v3 peers — for callers whose traffic must remain one signed POST
// per message (conservative relays, traffic recorders).
func WithoutStreams() DialOption {
	return func(c *dialConfig) { c.noStreams = true }
}

// Dial opens a Session to the gateway at gatewayURL: the single entry point
// of the user tier. The zero-option call needs an identity —
//
//	sess, err := unicore.Dial("https://fzj.example:4433",
//		unicore.WithIdentity(cred, ca))
//
// — and defaults everything else: the Usite is the URL's hostname (WithSite
// overrides), the transport is the mutual-TLS HTTP transport (WithTransport
// overrides), and the protocol version, retry count, and stream use follow
// the client defaults (WithVersion, WithRetries, WithoutStreams override).
// For in-process testbeds, Deployment.Session remains the shortcut.
func Dial(gatewayURL string, opts ...DialOption) (*Session, error) {
	cfg := dialConfig{retries: -1}
	for _, o := range opts {
		o(&cfg)
	}
	usite := cfg.usite
	if usite == "" {
		u, err := url.Parse(gatewayURL)
		if err != nil {
			return nil, fmt.Errorf("unicore: dial %q: %w", gatewayURL, err)
		}
		if u.Hostname() == "" {
			return nil, fmt.Errorf("unicore: dial %q: no hostname to name the Usite after (use WithSite)", gatewayURL)
		}
		usite = Usite(u.Hostname())
	}
	c := cfg.client
	if c == nil {
		if cfg.cred == nil || cfg.ca == nil {
			return nil, errors.New("unicore: Dial needs WithIdentity (or a prebuilt client via WithClient)")
		}
		tr := cfg.tr
		if tr == nil {
			tr = gateway.ClientTransport(cfg.cred, cfg.ca)
		}
		c = protocol.NewClient(tr, cfg.cred, cfg.ca, protocol.NewRegistry())
	}
	if gatewayURL != "" {
		c.Registry().Add(usite, gatewayURL)
	}
	if cfg.version > 0 {
		c.MaxVersion = cfg.version
	}
	if cfg.retries >= 0 {
		c.Retries = cfg.retries
	}
	if cfg.noStreams {
		c.DisableStreams = true
	}
	return client.NewSession(c, usite), nil
}

// DialClient opens a session for one Usite over an existing protocol client.
//
// Deprecated: use Dial with WithClient and WithSite —
// Dial("", WithClient(c), WithSite(usite)) — or Deployment.Session for
// in-process testbeds.
func DialClient(c *Client, usite Usite) *Session { return client.NewSession(c, usite) }

// Bulk data staging (package staging): Session.Upload streams a workstation
// file into a Vsite's spool in CRC-checked chunks and returns the transfer
// handle a Builder.ImportStaged task references, so huge inputs never ride
// inline in the signed consign envelope; Session.Download streams a Uspace
// result to an io.Writer through a windowed parallel fetch engine with
// incremental checksum verification and chunk-level failover retries.
type (
	// TransferOptions tunes the chunked transfer engines (chunk size,
	// in-flight window, retries) — set Session.Transfer to deviate from the
	// defaults.
	TransferOptions = staging.Options
	// TransferProgress is the resumable state of a streaming download
	// (Session.Download / Session.ResumeDownload).
	TransferProgress = staging.Progress
)

// DefaultTransferChunk is the default ranged-request size of the transfer
// engines.
const DefaultTransferChunk = staging.DefaultChunkSize

// NewJob starts building a job destined for target.
func NewJob(name string, target Target) *Builder { return client.NewJob(name, target) }

// Display renders an outcome tree as the JMC's coloured status display.
func Display(o *Outcome) string { return client.Display(o) }

// Deployments (paper §5.7 and Figure 2).
type (
	// Deployment is an in-process multi-Usite UNICORE installation.
	Deployment = testbed.Deployment
	// SiteSpec declares one Usite of a deployment.
	SiteSpec = testbed.SiteSpec
	// WorkloadConfig parameterises the synthetic job mix.
	WorkloadConfig = testbed.WorkloadConfig
	// JournalStore is the write-ahead journal + snapshot store behind a
	// durable NJS (Deployment.EnableDurability / KillSite / RestartSite).
	JournalStore = journal.Store
)

// NewDeployment deploys the given sites in-process under a virtual clock.
func NewDeployment(specs ...SiteSpec) (*Deployment, error) { return testbed.New(specs...) }

// Server-tier replica pools (the horizontal scale-out of docs/ARCHITECTURE.md;
// package pool): a Vsite can be served by several NJS replicas behind
// health-checked failover routing.
type (
	// ReplicaPolicy selects how a Vsite's replica pool routes admissions.
	ReplicaPolicy = pool.Policy
)

// Replica routing policies.
const (
	PoolRoundRobin     = pool.RoundRobin
	PoolLeastLoaded    = pool.LeastLoaded
	PoolConsistentHash = pool.ConsistentHash
)

// ReplicatedSite deploys one Usite whose generic-cluster Vsite is served by
// a pool of NJS replicas (Deployment.KillReplica / RestartReplica /
// EnableReplicaDurability drive the failover lifecycle).
func ReplicatedSite(usite Usite, vsite Vsite, nodes, replicas int, policy ReplicaPolicy) (*Deployment, error) {
	return testbed.ReplicatedSite(usite, vsite, nodes, replicas, policy)
}

// OpenJournal opens (or creates) a journal store rooted at dir — the handle
// EnableDurability/EnableReplicaDurability attach and RestartSite/
// RestartReplica recover from.
func OpenJournal(dir string) (*JournalStore, error) { return journal.Open(dir) }

// German deploys the six-site 1999 German production testbed of §5.7.
func German() (*Deployment, error) { return testbed.German() }

// SingleSite deploys a minimal one-site installation.
func SingleSite(usite Usite, vsite Vsite, nodes int) (*Deployment, error) {
	return testbed.SingleSite(usite, vsite, nodes)
}

// GenerateWorkload builds a deterministic synthetic job mix.
func GenerateWorkload(cfg WorkloadConfig) ([]*AbstractJob, error) {
	return testbed.GenerateWorkload(cfg)
}

// DefaultWorkload returns the standard mixed workload configuration.
func DefaultWorkload(seed int64, jobs int, targets []Target) WorkloadConfig {
	return testbed.DefaultWorkload(seed, jobs, targets)
}

// Resource broker (paper §6 outlook).
type (
	// Broker ranks Vsites for abstract resource requests.
	Broker = broker.Broker
	// BrokerPolicy selects the broker's ranking strategy.
	BrokerPolicy = broker.Policy
)

// Broker policies.
const (
	LeastLoaded    = broker.LeastLoaded
	FastestMachine = broker.FastestMachine
	BestTurnaround = broker.BestTurnaround
)

// NewBroker creates a resource broker with the given policy.
func NewBroker(policy BrokerPolicy) *Broker { return broker.New(policy) }

// Application-specific interfaces (paper §6: "application specific
// interfaces for standard packages like Ansys or Pamcrash").
type (
	// ApplicationInterface builds jobs in application terms for one
	// standard package.
	ApplicationInterface = asi.Interface
	// ApplicationTemplate declares a package's parameters and renderer.
	ApplicationTemplate = asi.Template
)

// Gaussian94 returns the computational-chemistry interface.
func Gaussian94() *ApplicationInterface { return asi.Gaussian94() }

// Ansys returns the structural-analysis interface.
func Ansys() *ApplicationInterface { return asi.Ansys() }

// PamCrash returns the crash-simulation interface.
func PamCrash() *ApplicationInterface { return asi.PamCrash() }

// ApplicationCatalog lists the built-in application interfaces.
func ApplicationCatalog() []*ApplicationInterface { return asi.Catalog() }
