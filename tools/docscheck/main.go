// Command docscheck fails when an exported identifier in the given packages
// lacks a doc comment. CI runs it over the packages whose godoc is part of
// the repository's documentation contract (internal/pool, internal/broker,
// internal/gateway, internal/events, internal/client, internal/staging,
// internal/telemetry, internal/controller, internal/analysis...); a
// declaration group's comment covers its members, as godoc renders it.
//
// Usage: go run ./tools/docscheck <package dir>...
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

// missing collects the undocumented exported identifiers of one package
// directory (test files excluded).
func missing(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					groupDoc := d.Doc != nil
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && s.Doc == nil && !groupDoc {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							if s.Doc != nil || groupDoc {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() {
									report(n.Pos(), "value", n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docscheck <package dir>...")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		ps, err := missing(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d undocumented exported identifiers\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %s fully documented\n", strings.Join(os.Args[1:], " "))
}
