// Command unilint is the repository's invariant checker: a multichecker
// that runs the internal/analysis suite — durableack, lockorder,
// versiongate, ctxpropagate, errsink — over package patterns, alongside the
// standard `go vet` passes. CI runs it as a required step; a non-empty
// finding set (or a malformed //lint:allow directive) fails the build.
//
// Usage:
//
//	go run ./tools/unilint [-vet=false] [-list] [packages]
//
// Packages default to ./... . Findings print as
// file:line:col: message [analyzer]. Suppress a reviewed finding in place
// with `//lint:allow <analyzer> <reason>` on the offending line or the line
// above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"unicore/internal/analysis"
	"unicore/internal/analysis/ctxpropagate"
	"unicore/internal/analysis/durableack"
	"unicore/internal/analysis/errsink"
	"unicore/internal/analysis/lockorder"
	"unicore/internal/analysis/versiongate"
)

// suite is the full analyzer set unilint runs.
var suite = []*analysis.Analyzer{
	durableack.Analyzer,
	lockorder.Analyzer,
	versiongate.Analyzer,
	ctxpropagate.Analyzer,
	errsink.Analyzer,
}

func main() {
	vet := flag.Bool("vet", true, "also run the standard `go vet` passes over the same patterns")
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Usage = usage
	flag.Parse()

	if *list {
		for _, a := range suite {
			scope := "all packages"
			if len(a.Scope) > 0 {
				scope = strings.Join(a.Scope, ", ")
			}
			fmt.Printf("%-14s %s\n%14s   scope: %s\n", a.Name, a.Doc, "", scope)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "unilint: go vet: %v\n", err)
			failed = true
		}
	}

	pkgs, err := analysis.List(patterns...)
	if err != nil {
		fatal(err)
	}
	loader := analysis.NewLoader()
	findings := 0
	for _, lp := range pkgs {
		// The suite analyzes shipped sources; the checker tooling itself
		// (this driver, the analyzers, their fixtures) is exercised by its
		// own tests instead — skipping it keeps fixture-like shapes from
		// double-reporting.
		if strings.HasPrefix(lp.ImportPath, "unicore/internal/analysis") ||
			strings.HasPrefix(lp.ImportPath, "unicore/tools/unilint") {
			continue
		}
		pkg, err := loader.Load(lp.Dir, lp.ImportPath)
		if err != nil {
			fatal(err)
		}
		diags, err := analysis.Run(suite, pkg)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "unilint: %d finding(s)\n", findings)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("unilint: %d package(s) clean\n", len(pkgs))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: unilint [-vet=false] [-list] [packages]\n\n")
	fmt.Fprintf(os.Stderr, "Runs the repository invariant analyzers (and go vet) over the packages.\n")
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "unilint: %v\n", err)
	os.Exit(2)
}
