// Command benchgate is the benchmark-regression gate of the CI pipeline. It
// runs the repository's core benchmarks once, writes the parsed metrics to a
// JSON artifact (BENCH_PR.json), and fails when
//
//   - a gated metric regresses by more than -threshold (default 25%) against
//     the checked-in BENCH_BASELINE.json, or
//   - a within-run invariant is violated: the parallel staging path of
//     BenchmarkTransferThroughput must beat the sequential per-envelope
//     baseline on envelopes/MB always, and on MB/s whenever more than one
//     CPU is available (on a single core a concurrency win cannot manifest,
//     so only a no-worse-than check applies there).
//
// Gated metrics come in two kinds. The machine-independent
// protocol-efficiency figures — envelopes/job (BenchmarkAwaitEvent) and
// envelopes/MB (BenchmarkTransferThroughput) — are deterministic per run, so
// a >25% increase is a real protocol regression, never runner noise. The v3
// hot-path rate figures — consigns/sec (BenchmarkConsignRate) and events/sec
// (BenchmarkEventRate) — are wall-clock and therefore runner-dependent, so
// they gate only against a generous floor: falling below half the baseline
// rate fails the run. Other wall-clock figures (ns/op, MB/s, B/op) are
// recorded in the artifact for trend inspection but are not gated across
// machines.
//
// Usage:
//
//	go run ./tools/benchgate                 # compare against BENCH_BASELINE.json
//	go run ./tools/benchgate -update         # refresh BENCH_BASELINE.json
//	go run ./tools/benchgate -out BENCH_PR.json -threshold 0.25
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchRegex selects the core benchmarks the gate runs.
// BenchmarkFederatedConsign's fed-forward-ack-p99-ms is wall-clock and thus
// advisory: recorded in the artifact for trend inspection, never gated.
const benchRegex = "BenchmarkConcurrentClients$|BenchmarkAwaitEvent$|BenchmarkJournalAppend$|BenchmarkTransferThroughput|BenchmarkFederatedConsign$|BenchmarkConsignRate$|BenchmarkEventRate$"

// gatedLower lists the lower-is-better protocol-efficiency counters: a rise
// past threshold over baseline fails the gate.
var gatedLower = map[string]bool{
	"envelopes/job": true,
	"envelopes/MB":  true,
}

// gatedRate lists the higher-is-better throughput figures of the v3 hot
// path. They are wall-clock, so the gate is a coarse floor — rateFloor of
// the recorded baseline — that catches a collapsed fast path without
// tripping on runner variance.
var gatedRate = map[string]bool{
	"consigns/sec": true,
	"events/sec":   true,
}

// rateFloor is the fraction of the baseline a gated rate may drop to.
const rateFloor = 0.50

// Report is the artifact schema (BENCH_PR.json / BENCH_BASELINE.json).
type Report struct {
	Go        string                        `json:"go"`
	Benchtime string                        `json:"benchtime"`
	Metrics   map[string]map[string]float64 `json:"metrics"` // benchmark → unit → value
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "checked-in baseline to gate against")
		outPath      = flag.String("out", "BENCH_PR.json", "artifact written with this run's metrics")
		threshold    = flag.Float64("threshold", 0.25, "allowed relative regression of a gated metric")
		benchtime    = flag.String("benchtime", "2x", "go test -benchtime per benchmark")
		update       = flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	)
	flag.Parse()

	out, err := runBenchmarks(*benchtime)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n%s", err, out)
		os.Exit(1)
	}
	report := Report{Go: runtime.Version(), Benchtime: *benchtime, Metrics: parseBench(out)}
	if len(report.Metrics) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark results parsed\n%s", out)
		os.Exit(1)
	}
	if err := writeJSON(*outPath, report); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks recorded in %s\n", len(report.Metrics), *outPath)

	failures := checkInvariants(report)
	if *update {
		if err := writeJSON(*baselinePath, report); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchgate: baseline %s refreshed\n", *baselinePath)
	} else {
		baseline, err := readJSON(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: reading baseline: %v (run with -update to create it)\n", err)
			os.Exit(1)
		}
		failures = append(failures, compare(baseline, report, *threshold)...)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: all gated metrics and invariants hold")
}

// runBenchmarks executes the selected benchmarks across every package.
func runBenchmarks(benchtime string) (string, error) {
	cmd := exec.Command("go", "test", "-run=NONE", "-bench", benchRegex, "-benchtime", benchtime, "./...")
	raw, err := cmd.CombinedOutput()
	return string(raw), err
}

// cpuSuffix strips go test's -GOMAXPROCS suffix from a benchmark name.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts metric values from `go test -bench` output lines of the
// form: BenchmarkName[/sub]-N  <iters>  <value> <unit> [<value> <unit>]...
func parseBench(out string) map[string]map[string]float64 {
	metrics := make(map[string]map[string]float64)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			if metrics[name] == nil {
				metrics[name] = make(map[string]float64)
			}
			metrics[name][fields[i+1]] = v
		}
	}
	return metrics
}

// findOne returns the single benchmark whose name has the given prefix.
func findOne(r Report, prefix string) (string, map[string]float64, bool) {
	for name, m := range r.Metrics {
		if strings.HasPrefix(name, prefix) {
			return name, m, true
		}
	}
	return "", nil, false
}

// checkInvariants enforces the within-run claims of the staging engine.
func checkInvariants(r Report) []string {
	var failures []string
	seqName, seq, okS := findOne(r, "BenchmarkTransferThroughput/path=sequential")
	parName, par, okP := findOne(r, "BenchmarkTransferThroughput/path=parallel")
	if !okS || !okP {
		return []string{"BenchmarkTransferThroughput did not report both transfer paths"}
	}
	if par["envelopes/MB"] >= seq["envelopes/MB"] {
		failures = append(failures, fmt.Sprintf(
			"%s uses %.2f envelopes/MB, not fewer than %s's %.2f",
			parName, par["envelopes/MB"], seqName, seq["envelopes/MB"]))
	}
	// The wall-clock win needs real cores: with only one CPU the windowed
	// engine can merely tie the sequential loop (minus per-envelope fixed
	// cost), so a no-worse-than-10% check applies there.
	floor := seq["MB/s"]
	kind := "beat"
	if runtime.NumCPU() == 1 {
		floor *= 0.90
		kind = "stay within 10% of"
	}
	if par["MB/s"] < floor {
		failures = append(failures, fmt.Sprintf(
			"%s runs at %.2f MB/s and does not %s %s's %.2f MB/s (GOMAXPROCS=%d)",
			parName, par["MB/s"], kind, seqName, seq["MB/s"], runtime.NumCPU()))
	}
	return failures
}

// compare gates this run's protocol-efficiency metrics against the baseline.
func compare(baseline, current Report, threshold float64) []string {
	var failures []string
	names := make([]string, 0, len(current.Metrics))
	for name := range current.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, ok := baseline.Metrics[name]
		if !ok {
			continue // new benchmark: recorded, gated once the baseline knows it
		}
		for unit, cur := range current.Metrics[name] {
			b, ok := base[unit]
			if !ok || b <= 0 {
				continue
			}
			switch {
			case gatedLower[unit] && cur > b*(1+threshold):
				failures = append(failures, fmt.Sprintf(
					"%s %s regressed: %.3f → %.3f (>%.0f%% over baseline)",
					name, unit, b, cur, threshold*100))
			case gatedRate[unit] && cur < b*rateFloor:
				failures = append(failures, fmt.Sprintf(
					"%s %s collapsed: %.1f → %.1f (below %.0f%% of baseline)",
					name, unit, b, cur, rateFloor*100))
			}
		}
	}
	return failures
}

func writeJSON(path string, r Report) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func readJSON(path string) (Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
