// Command metricssmoke is the CI metrics-smoke step: it boots a real durable
// controller-managed site from a topology spec file over mutually
// authenticated TLS, pushes one job through it with the
// actual CLI binaries, scrapes the live telemetry with `unicore-status
// metrics`, and fails when a headline metric is absent or zero:
//
//   - pki_verify_total        (every envelope the gateway verified)
//   - consign_ack_seconds     (admission latency histogram, NJS tier)
//   - journal_sync_seconds    (durable-ack fsync histogram, journal tier)
//
// It also exercises the machine-readable CLI surface: `-json list` must
// return the submitted job and `-json metrics` must decode as snapshots.
//
// Usage (from the repository root):
//
//	go run ./tools/metricssmoke
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"unicore/internal/controller"
	"unicore/internal/core"
	"unicore/internal/deploy"
	"unicore/internal/gateway"
	"unicore/internal/pki"
	"unicore/internal/sim"
	"unicore/internal/telemetry"
	"unicore/internal/uudb"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("metricssmoke: %v", err)
	}
	fmt.Println("metricssmoke: all headline metrics present and nonzero")
}

func run() error {
	work, err := os.MkdirTemp("", "metricssmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	// Keyring: a CA, the site server, and one mapped user.
	ca, err := pki.NewAuthority("SMOKE-CA")
	if err != nil {
		return err
	}
	srv, err := ca.IssueServer("gateway.smoke", "localhost")
	if err != nil {
		return err
	}
	user, err := ca.IssueUser("Smoke User", "SMOKE")
	if err != nil {
		return err
	}
	caPEM, err := ca.EncodePEM()
	if err != nil {
		return err
	}
	userPEM, err := user.EncodePEM()
	if err != nil {
		return err
	}
	caPath := filepath.Join(work, "ca.pem")
	credPath := filepath.Join(work, "user.pem")
	if err := deploy.WriteFile(caPath, caPEM); err != nil {
		return err
	}
	if err := deploy.WriteFile(credPath, userPEM); err != nil {
		return err
	}

	// The site boots from a declarative topology spec file — the same
	// document unicore-ctl applies — through the controller stack: one
	// durable two-replica Vsite on the real clock, so journal syncs happen
	// on the admission path the CLI drives and controller metrics ride the
	// gateway scrape.
	spec := &deploy.TopologySpec{
		Version:    deploy.TopologyVersion,
		JournalDir: filepath.Join(work, "state"),
		Sites: []deploy.TopologySite{{
			Usite: "SMOKE",
			Vsites: []deploy.TopologyVsite{{
				Name: "T3E", Machine: "t3e", Replicas: 2,
				Policy: "round-robin", SnapshotEvery: 256,
			}},
			Users: []deploy.UserMapping{{
				DN: user.DN(),
				Logins: map[core.Vsite]uudb.Login{
					"T3E": {UID: "smoke", Groups: []string{"ci"}},
				},
			}},
		}},
	}
	specData, err := spec.Encode()
	if err != nil {
		return err
	}
	specPath := filepath.Join(work, "topology.json")
	if err := deploy.WriteFile(specPath, specData); err != nil {
		return err
	}
	loaded, err := deploy.LoadTopology(specPath)
	if err != nil {
		return err
	}
	stack, err := controller.NewStack(controller.StackConfig{
		Spec:  loaded,
		Usite: "SMOKE",
		Cred:  srv,
		CA:    ca,
		Clock: sim.RealClock{},
	})
	if err != nil {
		return err
	}
	defer func() {
		if err := stack.Close(); err != nil {
			log.Printf("metricssmoke: closing stack: %v", err)
		}
	}()
	gw := stack.Gateway
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() {
		if err := gateway.ServeTLS(l, gw, srv, ca); err != nil {
			log.Printf("metricssmoke: gateway serve: %v", err)
		}
	}()
	gwURL := fmt.Sprintf("https://localhost:%d", l.Addr().(*net.TCPAddr).Port)

	// The smoke test drives the real binaries, not in-proc clients: the CLI
	// surface (flags, JSON output, exit codes) is part of what it verifies.
	bin := map[string]string{}
	for _, name := range []string{"unicore-submit", "unicore-status"} {
		out := filepath.Join(work, name)
		if raw, err := exec.Command("go", "build", "-o", out, "./cmd/"+name).CombinedOutput(); err != nil {
			return fmt.Errorf("building %s: %v\n%s", name, err, raw)
		}
		bin[name] = out
	}
	common := []string{"-gateway", gwURL, "-ca", caPath, "-cred", credPath}

	// Submit one script job and wait for its terminal event.
	jobOut, err := cli(bin["unicore-submit"], append(common, "-target", "SMOKE/T3E", "-script", "echo smoke", "-name", "smoke")...)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	jobID := strings.TrimSpace(jobOut)
	if jobID == "" {
		return fmt.Errorf("submit printed no job ID")
	}
	statusArgs := append(common, "-usite", "SMOKE")
	if _, err := cli(bin["unicore-status"], append(statusArgs, "wait", jobID)...); err != nil {
		return fmt.Errorf("wait %s: %w", jobID, err)
	}

	// -json list must be parseable and contain the job.
	listOut, err := cli(bin["unicore-status"], append(statusArgs, "-json", "list")...)
	if err != nil {
		return fmt.Errorf("list -json: %w", err)
	}
	var jobs []struct {
		Job string `json:"Job"`
	}
	if err := json.Unmarshal([]byte(listOut), &jobs); err != nil {
		return fmt.Errorf("list -json is not valid JSON: %w\n%s", err, listOut)
	}
	found := false
	for _, j := range jobs {
		if j.Job == jobID {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("list -json does not contain submitted job %s:\n%s", jobID, listOut)
	}

	// The scrape itself: merged site-wide metrics over MsgMetrics.
	metricsOut, err := cli(bin["unicore-status"], append(statusArgs, "-json", "metrics")...)
	if err != nil {
		return fmt.Errorf("metrics -json: %w", err)
	}
	var snaps []telemetry.Snapshot
	if err := json.Unmarshal([]byte(metricsOut), &snaps); err != nil {
		return fmt.Errorf("metrics -json is not valid JSON: %w\n%s", err, metricsOut)
	}
	merged := telemetry.Merge("smoke", snaps...)
	if v := merged.Total("pki_verify_total"); v <= 0 {
		return fmt.Errorf("pki_verify_total = %v, want > 0", v)
	}
	if n := merged.HistCount("consign_ack_seconds"); n == 0 {
		return fmt.Errorf("consign_ack_seconds has no observations")
	}
	if n := merged.HistCount("journal_sync_seconds"); n == 0 {
		return fmt.Errorf("journal_sync_seconds has no observations on a durable site")
	}
	// The spec-booted site is controller-managed: its reconcile telemetry
	// must ride the same scrape.
	if v := merged.Total("controller_reconcile_total"); v <= 0 {
		return fmt.Errorf("controller_reconcile_total = %v, want > 0", v)
	}
	if v := merged.Total("controller_replicas"); v != 2 {
		return fmt.Errorf("controller_replicas = %v, want the declared 2", v)
	}

	// The plaintext dump must carry the same counter.
	plainOut, err := cli(bin["unicore-status"], append(statusArgs, "metrics")...)
	if err != nil {
		return fmt.Errorf("metrics (plaintext): %w", err)
	}
	if !strings.Contains(plainOut, "pki_verify_total") {
		return fmt.Errorf("plaintext metrics dump missing pki_verify_total:\n%s", plainOut)
	}
	return nil
}

// cli runs one CLI binary with a generous timeout, returning its stdout.
func cli(path string, args ...string) (string, error) {
	cmd := exec.Command(path, args...)
	var out, errBuf strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	done := make(chan error, 1)
	if err := cmd.Start(); err != nil {
		return "", err
	}
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return out.String(), fmt.Errorf("%s %s: %v\nstderr: %s", filepath.Base(path), strings.Join(args, " "), err, errBuf.String())
		}
		return out.String(), nil
	case <-time.After(2 * time.Minute):
		_ = cmd.Process.Kill()
		return out.String(), fmt.Errorf("%s timed out after 2m\nstderr: %s", filepath.Base(path), errBuf.String())
	}
}
