// Command linkcheck validates intra-repository markdown links: every
// relative link target must exist, and a #fragment into a markdown file
// must match one of its headings (GitHub anchor rules). External links
// (http/https/mailto) are not fetched. It exits non-zero listing every
// broken link — the docs job of CI runs it over the whole repository.
//
// Usage: go run ./tools/linkcheck [root]
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links [text](target). Images and reference
// links are out of scope for this repository's docs.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// headingRE matches ATX headings.
var headingRE = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// anchorStrip removes everything GitHub drops when slugifying a heading.
var anchorStrip = regexp.MustCompile(`[^\p{L}\p{N}\s-]`)

// slug converts a heading to its GitHub anchor.
func slug(heading string) string {
	s := strings.ToLower(strings.TrimSpace(heading))
	s = anchorStrip.ReplaceAllString(s, "")
	s = strings.ReplaceAll(s, " ", "-")
	return s
}

// anchors returns the set of heading anchors of a markdown file.
func anchors(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool)
	for _, m := range headingRE.FindAllStringSubmatch(string(data), -1) {
		out[slug(m[1])] = true
	}
	return out, nil
}

// external reports whether a link target leaves the repository.
func external(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:")
}

// checkFile validates every relative link in one markdown file and returns
// human-readable problems.
func checkFile(root, path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if external(target) {
			continue
		}
		file, fragment, _ := strings.Cut(target, "#")
		resolved := path
		if file != "" {
			resolved = filepath.Join(filepath.Dir(path), file)
			rel, err := filepath.Rel(root, resolved)
			if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
				problems = append(problems, fmt.Sprintf("%s: link %q escapes the repository", path, target))
				continue
			}
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q", path, target))
				continue
			}
		}
		if fragment != "" && strings.HasSuffix(strings.ToLower(resolved), ".md") {
			hs, err := anchors(resolved)
			if err != nil {
				return nil, err
			}
			if !hs[fragment] {
				problems = append(problems, fmt.Sprintf("%s: link %q points at a missing heading", path, target))
			}
		}
	}
	return problems, nil
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	checked := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
			return nil
		}
		ps, err := checkFile(root, path)
		if err != nil {
			return err
		}
		checked++
		problems = append(problems, ps...)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken links in %d markdown files\n", len(problems), checked)
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d markdown files OK\n", checked)
}
