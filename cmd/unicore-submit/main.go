// Command unicore-submit is the CLI job preparation agent (JPA, §4.1): it
// reads a JSON job description, validates it against the destination site's
// resource pages, and consigns it over mutually authenticated TLS.
//
// Usage:
//
//	unicore-submit -gateway https://gw.fzj:8443 -ca ca.pem -cred alice.pem job.json
//	unicore-submit -gateway https://gw.fzj:8443 -ca ca.pem -cred alice.pem \
//	    -target FZJ/T3E -script "echo hello" -name quick
package main

import (
	"flag"
	"fmt"
	"log"

	"unicore/internal/ajo"
	"unicore/internal/client"
	"unicore/internal/core"
	"unicore/internal/deploy"
	"unicore/internal/gateway"
	"unicore/internal/protocol"
	"unicore/internal/resources"
)

func main() {
	var (
		gatewayURL = flag.String("gateway", "", "gateway base URL (https://host:port)")
		caPath     = flag.String("ca", "ca.pem", "CA file")
		credPath   = flag.String("cred", "user.pem", "user credential file")
		target     = flag.String("target", "", "USITE/VSITE for -script mode")
		script     = flag.String("script", "", "inline script body (alternative to a job file)")
		name       = flag.String("name", "cli job", "job name for -script mode")
		procs      = flag.Int("procs", 1, "processors for -script mode")
		skipCheck  = flag.Bool("skip-validate", false, "skip resource-page validation")
	)
	flag.Parse()
	if *gatewayURL == "" {
		log.Fatal("unicore-submit: need -gateway")
	}

	ca, err := deploy.LoadAuthority(*caPath)
	if err != nil {
		log.Fatalf("unicore-submit: %v", err)
	}
	cred, err := deploy.LoadCredential(*credPath)
	if err != nil {
		log.Fatalf("unicore-submit: %v", err)
	}

	job, err := buildJob(flag.Args(), *target, *script, *name, *procs)
	if err != nil {
		log.Fatalf("unicore-submit: %v", err)
	}

	reg := protocol.NewRegistry()
	reg.Add(job.Target.Usite, *gatewayURL)
	c := protocol.NewClient(gateway.ClientTransport(cred, ca), cred, ca, reg)
	jpa := client.NewJPA(c)

	if !*skipCheck {
		if _, err := jpa.FetchResources(job.Target.Usite); err != nil {
			log.Fatalf("unicore-submit: fetching resource pages: %v", err)
		}
		if err := jpa.Validate(job); err != nil {
			log.Fatalf("unicore-submit: job does not fit the destination: %v", err)
		}
	}
	id, err := jpa.Submit(job)
	if err != nil {
		log.Fatalf("unicore-submit: %v", err)
	}
	fmt.Println(id)
}

// buildJob assembles the job from a spec file or the -script flags.
func buildJob(args []string, target, script, name string, procs int) (*ajo.AbstractJob, error) {
	if len(args) == 1 {
		spec, err := deploy.LoadJobSpec(args[0])
		if err != nil {
			return nil, err
		}
		return spec.Build()
	}
	if script == "" || target == "" {
		return nil, fmt.Errorf("need either a job file argument or -target and -script")
	}
	tgt, err := core.ParseTarget(target)
	if err != nil {
		return nil, err
	}
	b := client.NewJob(name, tgt)
	b.Script("script", script+"\n", resources.Request{Processors: procs})
	return b.Build()
}
