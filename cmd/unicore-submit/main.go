// Command unicore-submit is the CLI job preparation agent (JPA, §4.1): it
// reads a JSON job description, validates it against the destination site's
// resource pages, and consigns it over mutually authenticated TLS.
//
// Usage:
//
//	unicore-submit -gateway https://gw.fzj:8443 -ca ca.pem -cred alice.pem job.json
//	unicore-submit -gateway https://gw.fzj:8443 -ca ca.pem -cred alice.pem \
//	    -target FZJ/T3E -script "echo hello" -name quick
//	unicore-submit ... -stage-in input.dat=/data/huge.bin job.json
//
// -stage-in TO=LOCALPATH (repeatable) streams a local file into the
// destination Vsite's spool through the chunked protocol-v2 staging engine
// before consigning, and adds an ImportTask referencing the committed
// transfer handle — so huge inputs never ride inline in the signed consign
// envelope.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"unicore"
	"unicore/internal/ajo"
	"unicore/internal/client"
	"unicore/internal/core"
	"unicore/internal/deploy"
	"unicore/internal/resources"
)

func main() {
	var (
		gatewayURL = flag.String("gateway", "", "gateway base URL (https://host:port)")
		caPath     = flag.String("ca", "ca.pem", "CA file")
		credPath   = flag.String("cred", "user.pem", "user credential file")
		target     = flag.String("target", "", "USITE/VSITE for -script mode")
		script     = flag.String("script", "", "inline script body (alternative to a job file)")
		name       = flag.String("name", "cli job", "job name for -script mode")
		procs      = flag.Int("procs", 1, "processors for -script mode")
		skipCheck  = flag.Bool("skip-validate", false, "skip resource-page validation")
		site       = flag.String("site", "", `"auto" lets a federated gateway place the job: -target names just the USITE and the grid's broker picks the Vsite, possibly behind a peer gateway`)
	)
	var stageIns []string
	flag.Func("stage-in", "stage TO=LOCALPATH into the job's Uspace via the chunked upload engine (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want TO=LOCALPATH, got %q", v)
		}
		stageIns = append(stageIns, v)
		return nil
	})
	flag.Parse()
	if *gatewayURL == "" {
		log.Fatal("unicore-submit: need -gateway")
	}

	ca, err := deploy.LoadAuthority(*caPath)
	if err != nil {
		log.Fatalf("unicore-submit: %v", err)
	}
	cred, err := deploy.LoadCredential(*credPath)
	if err != nil {
		log.Fatalf("unicore-submit: %v", err)
	}

	if *site != "" && *site != "auto" {
		log.Fatalf("unicore-submit: -site understands only \"auto\", got %q", *site)
	}
	auto := *site == "auto"
	job, err := buildJob(flag.Args(), *target, *script, *name, *procs, auto)
	if err != nil {
		log.Fatalf("unicore-submit: %v", err)
	}
	if auto {
		// An empty Vsite is the auto-placement shape: the gateway's broker
		// ranks every local and fresh-peer Vsite and may forward the consign.
		job.Target.Vsite = ""
		if len(stageIns) > 0 {
			// Staged uploads land in a concrete Vsite's spool and pin the
			// placement — incompatible with letting the broker choose.
			log.Fatal("unicore-submit: -stage-in needs a concrete -target USITE/VSITE, not -site auto")
		}
	}

	sess, err := unicore.Dial(*gatewayURL,
		unicore.WithIdentity(cred, ca), unicore.WithSite(job.Target.Usite))
	if err != nil {
		log.Fatalf("unicore-submit: %v", err)
	}
	jpa := sess.JPA()

	if len(stageIns) > 0 {
		if err := stageInputs(sess, job, stageIns); err != nil {
			log.Fatalf("unicore-submit: %v", err)
		}
	}

	if !*skipCheck && !auto {
		// With -site auto the destination Vsite is the broker's choice, so the
		// fit check happens at the gateway, not here.
		if _, err := jpa.FetchResources(job.Target.Usite); err != nil {
			log.Fatalf("unicore-submit: fetching resource pages: %v", err)
		}
		if err := jpa.Validate(job); err != nil {
			log.Fatalf("unicore-submit: job does not fit the destination: %v", err)
		}
	}
	// Submitting through the session mints a trace ID: the whole chain
	// (gateway dispatch, pool routing, NJS admission, journal sync) is then
	// visible via `unicore-status -spans metrics`. v1 sites simply drop the
	// trace at sealing time.
	id, err := sess.Submit(context.Background(), job)
	if err != nil {
		log.Fatalf("unicore-submit: %v", err)
	}
	if trace, ok := sess.Trace(id); ok {
		log.Printf("trace %s", trace)
	}
	fmt.Println(id)
}

// stageInputs uploads each TO=LOCALPATH file into the destination Vsite's
// spool and prepends an ImportTask referencing the committed handle, wired
// before every original root action so no task runs until its staged inputs
// are in the Uspace.
func stageInputs(sess *unicore.Session, job *ajo.AbstractJob, stageIns []string) error {
	g, err := job.Graph()
	if err != nil {
		return err
	}
	roots := g.Roots()
	for i, si := range stageIns {
		to, local, _ := strings.Cut(si, "=")
		if to == "" || local == "" {
			return fmt.Errorf("bad -stage-in %q: want TO=LOCALPATH", si)
		}
		f, err := os.Open(local)
		if err != nil {
			return err
		}
		handle, err := sess.Upload(context.Background(), job.Target.Vsite, to, f)
		if cerr := f.Close(); cerr != nil && err == nil {
			// A deferred read error (NFS and friends) can surface at close;
			// a stage-in that silently uploaded short data must not pass.
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("staging %s: %w", local, err)
		}
		imp := &ajo.ImportTask{
			Header: ajo.Header{
				ActionID:   ajo.ActionID(fmt.Sprintf("stage-in-%02d", i)),
				ActionName: "staged input " + to,
			},
			Source: ajo.ImportSource{Staged: handle},
			To:     to,
		}
		job.Actions = append(job.Actions, imp)
		for _, r := range roots {
			job.Dependencies = append(job.Dependencies, ajo.Dependency{
				Before: imp.ActionID, After: ajo.ActionID(r),
			})
		}
		fmt.Fprintf(os.Stderr, "staged %s as %s (%s)\n", local, handle, to)
	}
	return nil
}

// buildJob assembles the job from a spec file or the -script flags. With
// -site auto the target is a bare USITE (core.ParseTarget wants USITE/VSITE,
// so the auto shape is built by hand).
func buildJob(args []string, target, script, name string, procs int, auto bool) (*ajo.AbstractJob, error) {
	if len(args) == 1 {
		spec, err := deploy.LoadJobSpec(args[0])
		if err != nil {
			return nil, err
		}
		return spec.Build()
	}
	if script == "" || target == "" {
		return nil, fmt.Errorf("need either a job file argument or -target and -script")
	}
	var tgt core.Target
	if auto && !strings.Contains(target, "/") {
		tgt = core.Target{Usite: core.Usite(target)}
	} else {
		var err error
		if tgt, err = core.ParseTarget(target); err != nil {
			return nil, err
		}
	}
	b := client.NewJob(name, tgt)
	b.Script("script", script+"\n", resources.Request{Processors: procs})
	return b.Build()
}
