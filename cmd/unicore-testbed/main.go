// Command unicore-testbed runs the §5.7 German six-site deployment
// in-process under a virtual clock, drives a synthetic workload through the
// full stack (JPA → gateway → NJS → incarnation → batch subsystem), and
// prints the per-site accounting — a one-command demonstration of the whole
// architecture.
//
// Usage:
//
//	unicore-testbed -jobs 60 -seed 1999 [-split] [-csv accounting.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"unicore/internal/accounting"
	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/testbed"
)

func main() {
	var (
		jobs    = flag.Int("jobs", 40, "number of workload jobs")
		seed    = flag.Int64("seed", 1999, "workload random seed")
		split   = flag.Bool("split", false, "deploy every site in firewall-split mode")
		csvPath = flag.String("csv", "", "write the accounting records as CSV")
	)
	flag.Parse()

	specs := testbed.GermanSpecs()
	if *split {
		for i := range specs {
			specs[i].Split = true
		}
	}
	start := time.Now()
	d, err := testbed.New(specs...)
	if err != nil {
		log.Fatalf("unicore-testbed: %v", err)
	}
	defer d.Close()

	user, err := d.NewUser("Testbed User", "GCS", "bench")
	if err != nil {
		log.Fatalf("unicore-testbed: %v", err)
	}
	jpa, jmc := d.JPA(user), d.JMC(user)

	workload, err := testbed.GenerateWorkload(testbed.DefaultWorkload(*seed, *jobs, d.Targets()))
	if err != nil {
		log.Fatalf("unicore-testbed: %v", err)
	}
	fmt.Printf("deployed %d sites; consigning %d jobs...\n", len(d.Sites), len(workload))

	ids := make(map[core.JobID]core.Usite, len(workload))
	for _, j := range workload {
		id, err := jpa.Submit(j)
		if err != nil {
			log.Fatalf("unicore-testbed: submitting %s: %v", j.Name(), err)
		}
		ids[id] = j.Target.Usite
	}
	events := d.Run(50_000_000)

	var ok, failed int
	for id, usite := range ids {
		sum, err := jmc.Status(usite, id)
		if err != nil {
			log.Fatalf("unicore-testbed: status %s: %v", id, err)
		}
		if sum.Status == ajo.StatusSuccessful {
			ok++
		} else {
			failed++
		}
	}

	recs := d.Accounting()
	total := accounting.Summarise(recs)
	fmt.Printf("\n%d events fired in %.2fs wall time\n", events, time.Since(start).Seconds())
	fmt.Printf("jobs: %d successful, %d failed (of %d)\n", ok, failed, len(ids))
	fmt.Printf("batch records: %d; virtual makespan %s; total CPU %s; mean queue wait %s\n",
		total.Jobs, accounting.Makespan(recs).Round(time.Second),
		total.CPUTime.Round(time.Second), total.MeanQueueWait().Round(time.Second))

	fmt.Printf("\n%-10s %-8s %-8s %-12s %-12s %s\n", "VSITE", "JOBS", "FAILED", "CPU", "CHARGE", "UTILISATION")
	byTarget := accounting.ByTarget(recs)
	targets := make([]core.Target, 0, len(byTarget))
	for t := range byTarget {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].String() < targets[j].String() })
	makespan := accounting.Makespan(recs)
	for _, t := range targets {
		s := byTarget[t]
		var slots int
		for _, spec := range specs {
			if spec.Usite != t.Usite {
				continue
			}
			for _, v := range spec.Vsites {
				if v.Name == t.Vsite {
					slots = v.Profile.Processors
				}
			}
		}
		var perSite []accounting.Record
		for _, r := range recs {
			if r.Target == t {
				perSite = append(perSite, r)
			}
		}
		util := 0.0
		if len(perSite) > 0 && makespan > 0 {
			first := perSite[0].Submit
			for _, r := range perSite {
				if r.Submit.Before(first) {
					first = r.Submit
				}
			}
			util = accounting.Utilization(perSite, slots, first, first.Add(makespan))
		}
		fmt.Printf("%-10s %-8d %-8d %-12s %-12.0f %.1f%%\n",
			t, s.Jobs, s.Failed, s.CPUTime.Round(time.Second), s.Charge, util*100)
	}

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(accounting.CSV(recs)), 0o644); err != nil {
			log.Fatalf("unicore-testbed: writing CSV: %v", err)
		}
		fmt.Printf("\naccounting written to %s\n", *csvPath)
	}
}
