// Command unicore-njs runs the inside-the-firewall half of a split UNICORE
// server (§5.2): the NJS plus the gateway's security logic, listening on the
// site-selectable IP socket that the unicore-gateway front relays to. The
// front never sees job contents — it only forwards verified envelopes.
//
// With -state-dir the NJS is durable: job state is recovered from the
// write-ahead journal at boot, every admission and transition is journaled
// while serving, and SIGINT/SIGTERM snapshots the store, closes the
// listener, and exits cleanly. Without it the NJS is memory-only, as in the
// original prototype.
//
// The site shape comes from -config (per-site JSON) or from a shared
// declarative topology spec: -topology topology.json -usite FZJ derives the
// same config from the document unicore-ctl applies, and defaults the state
// directory to the spec's journalDir.
//
// Usage:
//
//	unicore-njs -config site.json -ca ca.pem -cred njs.pem \
//	    -listen 127.0.0.1:7000 -state-dir /var/lib/unicore/njs
//	unicore-njs -topology topology.json -usite FZJ -ca ca.pem -cred njs.pem
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"unicore/internal/core"
	"unicore/internal/deploy"
	"unicore/internal/gateway"
	"unicore/internal/journal"
	"unicore/internal/njs"
	"unicore/internal/protocol"
	"unicore/internal/sim"
	"unicore/internal/telemetry"
)

func main() {
	var (
		configPath = flag.String("config", "", "site configuration JSON")
		topoPath   = flag.String("topology", "", "topology spec file (alternative to -config; needs -usite)")
		usite      = flag.String("usite", "", "which declared usite of the -topology spec to serve")
		caPath     = flag.String("ca", "ca.pem", "CA file")
		credPath   = flag.String("cred", "njs.pem", "server credential file")
		listen     = flag.String("listen", "127.0.0.1:7000", "inner socket listen address")
		peers      = flag.String("peers", "", "comma-separated USITE=https://host:port peer registry")
		stateDir   = flag.String("state-dir", "", "journal/snapshot directory for durable job state (empty = memory-only)")
		snapEvery  = flag.Int("snapshot-every", 4096, "journal entries between automatic snapshots (with -state-dir)")
		spoolTTL   = flag.Duration("spool-ttl", njs.DefaultSpoolTTL, "staged uploads never consigned are garbage-collected after this age")
		debugAddr  = flag.String("debug-addr", "", "opt-in: serve net/http/pprof and plaintext /metrics on this address")
	)
	flag.Parse()
	if *configPath == "" && *topoPath == "" {
		log.Fatal("unicore-njs: need -config or -topology")
	}
	if *configPath != "" && *topoPath != "" {
		log.Fatal("unicore-njs: -config and -topology are mutually exclusive")
	}
	ca, err := deploy.LoadAuthority(*caPath)
	if err != nil {
		log.Fatalf("unicore-njs: %v", err)
	}
	cred, err := deploy.LoadCredential(*credPath)
	if err != nil {
		log.Fatalf("unicore-njs: %v", err)
	}
	var cfg *deploy.SiteConfig
	if *topoPath != "" {
		// Boot from the shared declarative topology: derive this site's
		// config from the spec, and default the journal root to the spec's
		// journalDir so every replica of the deployment journals under one
		// declared tree.
		if *usite == "" {
			log.Fatal("unicore-njs: -topology needs -usite")
		}
		spec, err := deploy.LoadTopology(*topoPath)
		if err != nil {
			log.Fatalf("unicore-njs: %v", err)
		}
		cfg, err = spec.SiteConfig(core.Usite(*usite))
		if err != nil {
			log.Fatalf("unicore-njs: %v", err)
		}
		if *stateDir == "" && spec.JournalDir != "" {
			*stateDir = filepath.Join(spec.JournalDir, *usite)
		}
	} else {
		cfg, err = deploy.LoadSiteConfig(*configPath)
		if err != nil {
			log.Fatalf("unicore-njs: %v", err)
		}
	}

	var (
		gw    *gateway.Gateway
		n     *njs.NJS
		store *journal.Store
	)
	if *stateDir != "" {
		gw, n, _, store, err = deploy.BuildDurableSite(cfg, cred, ca, sim.RealClock{}, *stateDir, *snapEvery)
		if err != nil {
			log.Fatalf("unicore-njs: %v", err)
		}
		log.Printf("recovered durable job state from %s", *stateDir)
	} else {
		gw, n, _, err = deploy.BuildSite(cfg, cred, ca, sim.RealClock{})
		if err != nil {
			log.Fatalf("unicore-njs: %v", err)
		}
	}
	if *peers != "" {
		reg, err := deploy.ParsePeers(*peers)
		if err != nil {
			log.Fatalf("unicore-njs: %v", err)
		}
		n.SetPeers(protocol.NewClient(gateway.ClientTransport(cred, ca), cred, ca, reg))
	}
	if store != nil {
		// Wiring is complete: resume the recovered workload (re-dispatch
		// in-flight actions, re-arm remote poll timers).
		n.ResumeRecovered()
	}
	if *debugAddr != "" {
		ds, err := telemetry.ServeDebug(*debugAddr, gw.Telemetry(), n.Telemetry())
		if err != nil {
			log.Fatalf("unicore-njs: debug server: %v", err)
		}
		defer func() {
			if err := ds.Close(); err != nil {
				log.Printf("unicore-njs: closing debug server: %v", err)
			}
		}()
		log.Printf("debug server (pprof + /metrics) on http://%s", ds.Addr())
	}

	// Staged-upload garbage collection: abandoned spool entries (uploads
	// never committed, or committed but never consigned) go after -spool-ttl.
	if *spoolTTL > 0 {
		sweep := time.NewTicker(*spoolTTL / 4)
		defer sweep.Stop()
		go func() {
			for range sweep.C {
				if removed := n.SweepStaging(*spoolTTL); removed > 0 {
					log.Printf("unicore-njs: swept %d abandoned staged uploads", removed)
				}
			}
		}()
	}

	inner := gateway.NewInner(gw)
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("unicore-njs: %v", err)
	}
	log.Printf("NJS for Usite %s (Vsites %v) behind the firewall on %s",
		n.Usite(), n.VsiteNames(), l.Addr())

	// Clean shutdown: stop taking requests first (close the listener), and
	// only once Serve has unwound snapshot the store (so the next boot
	// replays one compact snapshot instead of a long journal tail), retire
	// the NJS, and close the journal. A consign acknowledged after the
	// journal closed would be silently lost, so the NJS must refuse new
	// work before the store goes away.
	var shuttingDown atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		shuttingDown.Store(true)
		log.Printf("unicore-njs: %s — shutting down", sig)
		l.Close()
	}()

	err = inner.Serve(l)
	if shuttingDown.Load() {
		if store != nil {
			if serr := n.Snapshot(); serr != nil {
				log.Printf("unicore-njs: snapshot on shutdown: %v", serr)
			}
			// Connections accepted before the listener closed may still be
			// served. Retire the NJS before closing the store: from here on
			// consigns are refused with ErrDown instead of being acked
			// against a journal that is about to close (which would silently
			// lose them), and journaling stops so Close flushes a complete
			// stream.
			n.Kill()
			if serr := store.Close(); serr != nil {
				log.Printf("unicore-njs: closing journal: %v", serr)
			}
		}
		log.Print("unicore-njs: shut down cleanly")
		return
	}
	if err != nil && !errors.Is(err, net.ErrClosed) {
		log.Fatalf("unicore-njs: %v", err)
	}
}
