// Command unicore-njs runs the inside-the-firewall half of a split UNICORE
// server (§5.2): the NJS plus the gateway's security logic, listening on the
// site-selectable IP socket that the unicore-gateway front relays to. The
// front never sees job contents — it only forwards verified envelopes.
//
// Usage:
//
//	unicore-njs -config site.json -ca ca.pem -cred njs.pem -listen 127.0.0.1:7000
package main

import (
	"flag"
	"log"
	"net"

	"unicore/internal/deploy"
	"unicore/internal/gateway"
	"unicore/internal/protocol"
	"unicore/internal/sim"
)

func main() {
	var (
		configPath = flag.String("config", "", "site configuration JSON")
		caPath     = flag.String("ca", "ca.pem", "CA file")
		credPath   = flag.String("cred", "njs.pem", "server credential file")
		listen     = flag.String("listen", "127.0.0.1:7000", "inner socket listen address")
		peers      = flag.String("peers", "", "comma-separated USITE=https://host:port peer registry")
	)
	flag.Parse()
	if *configPath == "" {
		log.Fatal("unicore-njs: need -config")
	}
	ca, err := deploy.LoadAuthority(*caPath)
	if err != nil {
		log.Fatalf("unicore-njs: %v", err)
	}
	cred, err := deploy.LoadCredential(*credPath)
	if err != nil {
		log.Fatalf("unicore-njs: %v", err)
	}
	cfg, err := deploy.LoadSiteConfig(*configPath)
	if err != nil {
		log.Fatalf("unicore-njs: %v", err)
	}
	gw, n, _, err := deploy.BuildSite(cfg, cred, ca, sim.RealClock{})
	if err != nil {
		log.Fatalf("unicore-njs: %v", err)
	}
	if *peers != "" {
		reg, err := deploy.ParsePeers(*peers)
		if err != nil {
			log.Fatalf("unicore-njs: %v", err)
		}
		n.SetPeers(protocol.NewClient(gateway.ClientTransport(cred, ca), cred, ca, reg))
	}
	inner := gateway.NewInner(gw)
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("unicore-njs: %v", err)
	}
	log.Printf("NJS for Usite %s (Vsites %v) behind the firewall on %s",
		n.Usite(), n.VsiteNames(), l.Addr())
	if err := inner.Serve(l); err != nil {
		log.Fatalf("unicore-njs: %v", err)
	}
}
