// Command unicore-idb is the resource-page editor of §5.4: "each UNICORE
// site provides a so called resource page ... prepared by a UNICORE site
// administrator through a resource page editor. It is stored in ASN1 format
// for the JPA."
//
// Usage:
//
//	unicore-idb profiles                          # list the machine profiles
//	unicore-idb create -machine t3e -pes 512 -target FZJ/T3E -o page.der
//	unicore-idb show -i page.der                  # decode an ASN.1 page
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"unicore/internal/core"
	"unicore/internal/deploy"
	"unicore/internal/machine"
	"unicore/internal/resources"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "profiles":
		cmdProfiles()
	case "create":
		err = cmdCreate(args)
	case "show":
		err = cmdShow(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("unicore-idb: %v", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: unicore-idb <profiles|create|show> [flags]")
}

func cmdProfiles() {
	fmt.Printf("%-10s %-16s %-12s %-6s %-8s %s\n", "NAME", "ARCHITECTURE", "OS", "PEs", "MF/PE", "BATCH")
	for _, p := range machine.Profiles() {
		fmt.Printf("%-10s %-16s %-12s %-6d %-8d %s\n",
			key(p.Architecture), p.Architecture, p.OS, p.Processors, p.MFlopsPerPE, p.Dialect)
	}
}

func key(arch string) string {
	switch arch {
	case "Cray T3E":
		return "t3e"
	case "Fujitsu VPP700":
		return "vpp700"
	case "IBM SP-2":
		return "sp2"
	case "NEC SX-4":
		return "sx4"
	default:
		return "cluster"
	}
}

func cmdCreate(args []string) error {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	machineName := fs.String("machine", "", "profile: t3e, vpp700, sp2, sx4, cluster")
	pes := fs.Int("pes", 0, "processor count override")
	target := fs.String("target", "", "USITE/VSITE the page describes")
	out := fs.String("o", "page.der", "output DER file")
	software := fs.String("software", "", "extra software entries: kind:name:version,...")
	fs.Parse(args)
	if *machineName == "" || *target == "" {
		return fmt.Errorf("need -machine and -target")
	}
	prof, err := deploy.Machine(*machineName, *pes)
	if err != nil {
		return err
	}
	tgt, err := core.ParseTarget(*target)
	if err != nil {
		return err
	}
	page := prof.ResourcePage()
	page.Target = tgt
	if *software != "" {
		extra, err := parseSoftware(*software)
		if err != nil {
			return err
		}
		page.Software = append(page.Software, extra...)
	}
	der, err := page.MarshalASN1()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, der, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote resource page for %s (%s) to %s (%d bytes ASN.1 DER)\n",
		tgt, page.Architecture, *out, len(der))
	return nil
}

// parseSoftware parses "compiler:f90:3.1,package:Gaussian94:94".
func parseSoftware(s string) ([]resources.Software, error) {
	var out []resources.Software
	for _, item := range splitComma(s) {
		var kind, name, version string
		parts := splitColon(item)
		switch len(parts) {
		case 3:
			kind, name, version = parts[0], parts[1], parts[2]
		case 2:
			kind, name = parts[0], parts[1]
		default:
			return nil, fmt.Errorf("bad software entry %q (want kind:name[:version])", item)
		}
		out = append(out, resources.Software{
			Kind:    resources.SoftwareKind(kind),
			Name:    name,
			Version: version,
		})
	}
	return out, nil
}

func splitComma(s string) []string { return splitOn(s, ',') }
func splitColon(s string) []string { return splitOn(s, ':') }

func splitOn(s string, sep rune) []string {
	var out []string
	cur := ""
	for _, c := range s {
		if c == sep {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(c)
	}
	return append(out, cur)
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	in := fs.String("i", "page.der", "input DER file")
	fs.Parse(args)
	der, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	page, err := resources.UnmarshalASN1(der)
	if err != nil {
		return err
	}
	fmt.Printf("target:       %s\n", page.Target)
	fmt.Printf("architecture: %s\n", page.Architecture)
	fmt.Printf("os:           %s\n", page.OpSys)
	fmt.Printf("performance:  %d MFlops/PE\n", page.PerfMFlops)
	fmt.Printf("processors:   %d..%d (default %d)\n", page.Processors.Min, page.Processors.Max, page.Processors.Default)
	fmt.Printf("run time:     %d..%d s (default %d)\n", page.RunTimeSec.Min, page.RunTimeSec.Max, page.RunTimeSec.Default)
	fmt.Printf("memory:       %d..%d MB\n", page.MemoryMB.Min, page.MemoryMB.Max)
	fmt.Printf("perm disk:    %d..%d MB\n", page.PermDiskMB.Min, page.PermDiskMB.Max)
	fmt.Printf("temp disk:    %d..%d MB\n", page.TempDiskMB.Min, page.TempDiskMB.Max)
	fmt.Println("software:")
	for _, sw := range page.Software {
		fmt.Printf("  %-9s %s %s (%s)\n", sw.Kind, sw.Name, sw.Version, sw.Path)
	}
	return nil
}
