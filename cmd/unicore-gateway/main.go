// Command unicore-gateway runs one Usite's UNICORE server over mutually
// authenticated TLS (the https of §4.1). In the default (combined) mode it
// hosts the gateway and the NJS in one process; with -front it runs only the
// Web-server half of the §5.2 firewall split and relays to an inner
// unicore-njs over an IP socket.
//
// With -replicas N (or per-Vsite "replicas" counts in the site config) the
// combined mode runs every Vsite as a pool of N NJS replicas behind
// health-checked failover routing (-pool-policy selects round-robin,
// least-loaded, or consistent-hash).
//
// Repeatable -peer USITE=https://host:port flags federate the gateway with
// peer gateways at other administrative sites: it gossips advertisements to
// them (-fed-interval), places `-site auto` jobs across the grid, and
// forwards consigns that land behind a peer. -advertise is the URL peers
// dial back; it is required with -peer.
//
// Usage:
//
//	unicore-gateway -config site.json -ca ca.pem -cred gateway.pem -listen :8443
//	unicore-gateway -config site.json -replicas 3 -pool-policy least-loaded -listen :8443
//	unicore-gateway -config site.json -peer DWD=https://gw.dwd:8443 -advertise https://gw.fzj:8443 -listen :8443
//	unicore-gateway -front -inner 127.0.0.1:7000 -ca ca.pem -cred front.pem -listen :8443
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"unicore/internal/broker"
	"unicore/internal/core"
	"unicore/internal/deploy"
	"unicore/internal/federation"
	"unicore/internal/gateway"
	"unicore/internal/pki"
	"unicore/internal/pool"
	"unicore/internal/protocol"
	"unicore/internal/sim"
	"unicore/internal/telemetry"
)

func main() {
	var (
		configPath = flag.String("config", "", "site configuration JSON (combined mode)")
		caPath     = flag.String("ca", "ca.pem", "CA file")
		credPath   = flag.String("cred", "gateway.pem", "server credential file")
		listen     = flag.String("listen", ":8443", "TLS listen address")
		front      = flag.Bool("front", false, "run only the firewall front; relay to -inner")
		inner      = flag.String("inner", "127.0.0.1:7000", "inner NJS socket address (front mode)")
		peers      = flag.String("peers", "", "comma-separated USITE=https://host:port peer registry")
		appletsDir = flag.String("applets", "", "directory of applet payload files to sign and serve")
		softPath   = flag.String("software", "", "software credential used to sign applets")
		replicas   = flag.Int("replicas", 1, "NJS replicas per Vsite (replica-pool mode when > 1)")
		poolPolicy = flag.String("pool-policy", "round-robin", "replica routing: round-robin, least-loaded, or consistent-hash")
		debugAddr  = flag.String("debug-addr", "", "opt-in: serve net/http/pprof and plaintext /metrics on this address")
		advertise  = flag.String("advertise", "", "this gateway's URL in federation advertisements (required with -peer)")
		fedEvery   = flag.Duration("fed-interval", time.Minute, "federation gossip cadence")
	)
	var fedPeers []deploy.TopologyPeer
	flag.Func("peer", "peer gateway as USITE=https://host:port (repeatable; federates the grid)", func(v string) error {
		u, url, ok := strings.Cut(v, "=")
		if !ok || u == "" || url == "" {
			return fmt.Errorf("want USITE=URL, got %q", v)
		}
		fedPeers = append(fedPeers, deploy.TopologyPeer{Usite: core.Usite(u), URL: url})
		return nil
	})
	flag.Parse()

	ca, err := deploy.LoadAuthority(*caPath)
	if err != nil {
		log.Fatalf("unicore-gateway: %v", err)
	}
	cred, err := deploy.LoadCredential(*credPath)
	if err != nil {
		log.Fatalf("unicore-gateway: %v", err)
	}

	var handler http.Handler
	var debugRegs []*telemetry.Registry
	if *front {
		if len(fedPeers) > 0 {
			log.Fatal("unicore-gateway: -peer federates the combined gateway; the firewall front only relays")
		}
		f, err := gateway.NewFront(cred, ca, gateway.TCPDial(*inner))
		if err != nil {
			log.Fatalf("unicore-gateway: %v", err)
		}
		defer f.Close()
		handler = f
		log.Printf("front mode: relaying to inner NJS at %s", *inner)
	} else {
		if *configPath == "" {
			log.Fatal("unicore-gateway: combined mode needs -config")
		}
		cfg, err := deploy.LoadSiteConfig(*configPath)
		if err != nil {
			log.Fatalf("unicore-gateway: %v", err)
		}
		replicated := *replicas > 1
		for _, v := range cfg.Vsites {
			if v.Replicas > 1 {
				replicated = true
			}
		}
		var reg *protocol.Registry
		if *peers != "" {
			if reg, err = deploy.ParsePeers(*peers); err != nil {
				log.Fatalf("unicore-gateway: %v", err)
			}
		}
		var gw *gateway.Gateway
		if replicated {
			policy, err := pool.ParsePolicy(*poolPolicy)
			if err != nil {
				log.Fatalf("unicore-gateway: %v", err)
			}
			g, router, reps, _, err := deploy.BuildReplicatedSite(cfg, cred, ca, sim.RealClock{}, *replicas, policy)
			if err != nil {
				log.Fatalf("unicore-gateway: %v", err)
			}
			gw = g
			if reg != nil {
				for _, ns := range reps {
					for _, n := range ns {
						n.SetPeers(protocol.NewClient(gateway.ClientTransport(cred, ca), cred, ca, reg))
					}
				}
			}
			router.StartHealthChecks()
			debugRegs = append(debugRegs, gw.Telemetry())
			for _, set := range router.Sets() {
				debugRegs = append(debugRegs, set.Telemetry())
				log.Printf("vsite %s: %d NJS replicas, %s routing", set.Vsite(), len(set.Names()), policy)
			}
			for _, ns := range reps {
				for _, n := range ns {
					debugRegs = append(debugRegs, n.Telemetry())
				}
			}
		} else {
			g, n, _, err := deploy.BuildSite(cfg, cred, ca, sim.RealClock{})
			if err != nil {
				log.Fatalf("unicore-gateway: %v", err)
			}
			gw = g
			if reg != nil {
				n.SetPeers(protocol.NewClient(gateway.ClientTransport(cred, ca), cred, ca, reg))
			}
			debugRegs = append(debugRegs, gw.Telemetry(), n.Telemetry())
		}
		if len(fedPeers) > 0 {
			fed, err := federate(gw, cred, ca, fedPeers, *advertise, *fedEvery)
			if err != nil {
				log.Fatalf("unicore-gateway: %v", err)
			}
			defer fed.Stop()
			debugRegs = append(debugRegs, fed.Registry())
			log.Printf("federated with %v, advertising %s every %s", fed.Peers(), *advertise, *fedEvery)
		}
		if *appletsDir != "" {
			if err := installApplets(gw, *appletsDir, *softPath); err != nil {
				log.Fatalf("unicore-gateway: %v", err)
			}
		}
		handler = gw
		var vsites []string
		for _, v := range cfg.Vsites {
			vsites = append(vsites, string(v.Name))
		}
		log.Printf("combined mode: serving Usite %s with Vsites %v", gw.Usite(), vsites)
	}

	if *debugAddr != "" {
		// In front mode no registries exist on this side of the firewall: the
		// debug server still serves pprof, and /metrics is an empty document.
		ds, err := telemetry.ServeDebug(*debugAddr, debugRegs...)
		if err != nil {
			log.Fatalf("unicore-gateway: debug server: %v", err)
		}
		defer func() {
			if err := ds.Close(); err != nil {
				log.Printf("unicore-gateway: closing debug server: %v", err)
			}
		}()
		log.Printf("debug server (pprof + /metrics) on http://%s", ds.Addr())
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("unicore-gateway: %v", err)
	}
	log.Printf("listening on %s (mutual TLS)", l.Addr())
	if err := gateway.ServeTLS(l, handler, cred, ca); err != nil {
		log.Fatalf("unicore-gateway: %v", err)
	}
}

// federate peers the gateway with the -peer sites and starts the gossip
// loop. The federation speaks under the gateway's own server credential over
// a fresh mutual-TLS transport and registry, so peer routing never collides
// with the NJS's -peers transfer registry.
func federate(gw *gateway.Gateway, cred *pki.Credential, ca *pki.Authority, peers []deploy.TopologyPeer, advertise string, interval time.Duration) (*federation.Federation, error) {
	if advertise == "" {
		return nil, fmt.Errorf("-peer needs -advertise (the URL peers dial this gateway at)")
	}
	fed, err := federation.New(federation.Config{
		Usite:  gw.Usite(),
		URL:    advertise,
		Client: protocol.NewClient(gateway.ClientTransport(cred, ca), cred, ca, protocol.NewRegistry()),
		Clock:  sim.RealClock{},
		Policy: broker.LeastLoaded,
	})
	if err != nil {
		return nil, err
	}
	for _, p := range peers {
		if err := fed.AddPeer(p.Usite, p.URL); err != nil {
			return nil, err
		}
	}
	gw.SetFederation(fed)
	fed.Start(interval)
	return fed, nil
}

// installApplets signs and installs every file in dir as an applet.
func installApplets(gw *gateway.Gateway, dir, softPath string) error {
	if softPath == "" {
		return fmt.Errorf("-applets needs -software")
	}
	soft, err := deploy.LoadCredential(softPath)
	if err != nil {
		return err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		payload, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		a, err := gateway.SignApplet(soft, e.Name(), "1.0", payload)
		if err != nil {
			return err
		}
		if err := gw.InstallApplet(a); err != nil {
			return err
		}
		log.Printf("installed applet %s (%d bytes)", e.Name(), len(payload))
	}
	return nil
}
