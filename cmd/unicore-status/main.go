// Command unicore-status is the CLI job monitor controller (JMC, §4.1,
// §5.7): it lists jobs, shows the coloured status display, saves task
// output, controls jobs, and — over protocol v2+ — follows the server-push
// event stream of a job instead of polling it.
//
// Usage:
//
//	unicore-status -gateway https://gw.fzj:8443 -usite FZJ -ca ca.pem -cred alice.pem list
//	unicore-status ... -json list
//	unicore-status ... status  FZJ-000042
//	unicore-status ... outcome FZJ-000042
//	unicore-status ... wait    FZJ-000042
//	unicore-status ... watch   FZJ-000042
//	unicore-status ... -o result.dat fetch FZJ-000042 out.dat
//	unicore-status ... abort   FZJ-000042
//	unicore-status ... hold    FZJ-000042
//	unicore-status ... resume  FZJ-000042
//	unicore-status ... metrics
//	unicore-status ... -per-replica -spans -json metrics
//
// wait awaits the terminal event over the event stream (falling back to
// -interval polling against a v1 site); watch streams every lifecycle event
// as it happens until the job finishes or the user interrupts — against a v3
// site the events arrive pushed over the persistent stream; fetch streams
// a Uspace file to -o (or stdout) through the windowed parallel download
// engine, verifying the whole-file checksum incrementally; metrics scrapes
// the site's live telemetry over protocol v2 (MsgMetrics), merged site-wide
// by default or per replica with -per-replica. -json switches list and
// metrics to machine-readable output.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"unicore"
	"unicore/internal/ajo"
	"unicore/internal/core"
	"unicore/internal/deploy"
	"unicore/internal/protocol"
)

func main() {
	var (
		gatewayURL = flag.String("gateway", "", "gateway base URL (https://host:port)")
		usiteFlag  = flag.String("usite", "", "Usite name behind the gateway")
		caPath     = flag.String("ca", "ca.pem", "CA file")
		credPath   = flag.String("cred", "user.pem", "user credential file")
		interval   = flag.Duration("interval", 2*time.Second, "poll interval for wait against a v1 site")
		maxPolls   = flag.Int("max-polls", 1800, "poll limit for wait against a v1 site")
		outPath    = flag.String("o", "", "fetch: write the file here instead of stdout")
		jsonOut    = flag.Bool("json", false, "list, metrics: emit JSON instead of the table")
		perReplica = flag.Bool("per-replica", false, "metrics: one snapshot per origin instead of the site-wide merge")
		withSpans  = flag.Bool("spans", false, "metrics: include recent trace spans in the scrape")
	)
	flag.Parse()
	if *gatewayURL == "" || *usiteFlag == "" {
		log.Fatal("unicore-status: need -gateway and -usite")
	}
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("unicore-status: need a command (list, status, outcome, wait, watch, fetch, abort, hold, resume)")
	}
	usite := core.Usite(*usiteFlag)

	ca, err := deploy.LoadAuthority(*caPath)
	if err != nil {
		log.Fatalf("unicore-status: %v", err)
	}
	cred, err := deploy.LoadCredential(*credPath)
	if err != nil {
		log.Fatalf("unicore-status: %v", err)
	}
	sess, err := unicore.Dial(*gatewayURL, unicore.WithIdentity(cred, ca), unicore.WithSite(usite))
	if err != nil {
		log.Fatalf("unicore-status: %v", err)
	}

	cmd := args[0]
	jobArg := func() core.JobID {
		if len(args) < 2 {
			log.Fatalf("unicore-status: %s needs a job ID", cmd)
		}
		return core.JobID(args[1])
	}
	switch cmd {
	case "list":
		jobs, err := sess.List(context.Background())
		if err != nil {
			log.Fatalf("unicore-status: %v", err)
		}
		if *jsonOut {
			printJSON(jobs)
			return
		}
		if len(jobs) == 0 {
			fmt.Println("no jobs")
			return
		}
		fmt.Printf("%-14s %-10s %-20s %s\n", "JOB", "STATUS", "SUBMITTED", "NAME")
		for _, j := range jobs {
			fmt.Printf("%-14s %-10s %-20s %s\n", j.Job, j.Status, j.Submitted.Format(time.RFC3339), j.Name)
		}
	case "metrics":
		snaps, err := sess.Metrics(context.Background(), *perReplica, *withSpans)
		if err != nil {
			log.Fatalf("unicore-status: %v", err)
		}
		if *jsonOut {
			printJSON(snaps)
			return
		}
		for _, s := range snaps {
			if err := s.Flush(os.Stdout); err != nil {
				log.Fatalf("unicore-status: %v", err)
			}
		}
	case "status":
		sum, err := sess.Status(context.Background(), jobArg())
		if err != nil {
			log.Fatalf("unicore-status: %v", err)
		}
		printSummary(sum)
	case "wait":
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		sum, err := sess.Await(ctx, jobArg())
		if errors.Is(err, protocol.ErrV1Peer) {
			// The site only speaks v1: fall back to interval polling through
			// the JMC compatibility wrapper.
			sum, err = sess.JMC().Wait(usite, jobArg(), *interval, time.Sleep, *maxPolls)
		}
		if err != nil {
			log.Fatalf("unicore-status: %v", err)
		}
		printSummary(sum)
	case "watch":
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		ch, err := sess.Watch(ctx, jobArg())
		if err != nil {
			log.Fatalf("unicore-status: %v", err)
		}
		terminal := false
		for ev := range ch {
			printEvent(ev)
			terminal = ev.Terminal
		}
		if !terminal {
			if ctx.Err() != nil {
				log.Fatal("unicore-status: watch interrupted before the job finished")
			}
			log.Fatal("unicore-status: event stream ended before the job's terminal event")
		}
	case "fetch":
		if len(args) < 3 {
			log.Fatal("unicore-status: fetch needs a job ID and a Uspace file name")
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		file := args[2]
		if *outPath != "" {
			n, err := sess.DownloadTo(ctx, jobArg(), file, *outPath)
			if err != nil {
				log.Fatalf("unicore-status: %v", err)
			}
			fmt.Fprintf(os.Stderr, "%d bytes → %s\n", n, *outPath)
			return
		}
		if _, err := sess.Download(ctx, jobArg(), file, os.Stdout); err != nil {
			log.Fatalf("unicore-status: %v", err)
		}
	case "outcome":
		o, err := sess.Outcome(context.Background(), jobArg())
		if err != nil {
			log.Fatalf("unicore-status: %v", err)
		}
		fmt.Print(unicore.Display(o))
	case "abort":
		if err := sess.Abort(context.Background(), jobArg()); err != nil {
			log.Fatalf("unicore-status: %v", err)
		}
		fmt.Println("aborted")
	case "hold":
		if err := sess.Hold(context.Background(), jobArg()); err != nil {
			log.Fatalf("unicore-status: %v", err)
		}
		fmt.Println("held")
	case "resume":
		if err := sess.Resume(context.Background(), jobArg()); err != nil {
			log.Fatalf("unicore-status: %v", err)
		}
		fmt.Println("resumed")
	default:
		log.Fatalf("unicore-status: unknown command %q", cmd)
	}
}

// printJSON emits one indented JSON document on stdout.
func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatalf("unicore-status: encoding JSON: %v", err)
	}
}

func printSummary(sum ajo.Summary) {
	fmt.Printf("%s: %s (%d/%d actions done, %d failed)\n",
		sum.Job, sum.Status, sum.Done, sum.Total, sum.Failed)
}

func printEvent(ev unicore.JobEvent) {
	line := fmt.Sprintf("%s  #%-3d %-12s", ev.Time.Format(time.RFC3339), ev.Seq, ev.Type)
	if ev.Action != "" {
		line += " " + string(ev.Action)
	}
	line += " → " + ev.Status.String()
	if ev.Reason != "" {
		line += " (" + ev.Reason + ")"
	}
	fmt.Println(line)
}
