// Command unicore-ctl is the declarative face of a UNICORE deployment: it
// validates, diffs, and applies topology spec files (deploy.TopologySpec).
//
//	unicore-ctl validate -f topology.json
//	unicore-ctl diff -f desired.json -current live.json
//	unicore-ctl apply -f topology.json -usite FZJ -ca ca.pem -cred gw.pem -listen :8443
//
// `apply` boots the declared site — UUDB, replica pools, gateway — and hands
// it to a reconcile controller that keeps the live deployment converged on
// the spec: it heals crashed replicas from their journals, rolls the fleet
// on generation bumps, and autoscales pools that declare bounds. The process
// serves until SIGINT/SIGTERM, then drains down cleanly (snapshot, kill,
// close journals).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"unicore/internal/controller"
	"unicore/internal/core"
	"unicore/internal/deploy"
	"unicore/internal/gateway"
	"unicore/internal/sim"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "validate":
		err = runValidate(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	case "apply":
		err = runApply(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("unicore-ctl: %v", err)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  unicore-ctl validate -f topology.json
  unicore-ctl diff -f desired.json -current live.json
  unicore-ctl apply -f topology.json -usite FZJ -ca ca.pem -cred gw.pem -listen :8443
`)
}

// runValidate parses the spec (which validates it) and prints a summary.
func runValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	specPath := fs.String("f", "", "topology spec file")
	fs.Parse(args)
	if *specPath == "" {
		return fmt.Errorf("validate: need -f")
	}
	spec, err := deploy.LoadTopology(*specPath)
	if err != nil {
		return err
	}
	for i := range spec.Sites {
		site := &spec.Sites[i]
		for j := range site.Vsites {
			v := &site.Vsites[j]
			extra := ""
			if v.Autoscale != nil {
				extra = fmt.Sprintf(" autoscale[%d,%d]", v.Autoscale.Min, v.Autoscale.Max)
			}
			fmt.Printf("%s/%s: %s x%d %s gen %d%s\n", site.Usite, v.Name,
				v.Machine, v.DeclaredReplicas(), v.Policy, v.Generation, extra)
		}
	}
	fmt.Printf("%s: valid (version %d, %d site(s))\n", *specPath, spec.Version, len(spec.Sites))
	return nil
}

// runDiff prints the changes taking -current to -f, one per line, in apply
// order. Exits 0 with "no changes" when the specs declare the same topology.
func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	specPath := fs.String("f", "", "desired topology spec file")
	currentPath := fs.String("current", "", "currently applied topology spec file")
	fs.Parse(args)
	if *specPath == "" || *currentPath == "" {
		return fmt.Errorf("diff: need -f and -current")
	}
	desired, err := deploy.LoadTopology(*specPath)
	if err != nil {
		return err
	}
	current, err := deploy.LoadTopology(*currentPath)
	if err != nil {
		return err
	}
	changes := deploy.DiffTopology(current, desired)
	if len(changes) == 0 {
		fmt.Println("no changes")
		return nil
	}
	for _, c := range changes {
		fmt.Println(c.String())
	}
	return nil
}

// runApply boots the declared site and serves it under continuous
// reconciliation until a signal arrives.
func runApply(args []string) error {
	fs := flag.NewFlagSet("apply", flag.ExitOnError)
	var (
		specPath  = fs.String("f", "", "topology spec file")
		usite     = fs.String("usite", "", "which declared usite this process serves")
		caPath    = fs.String("ca", "ca.pem", "CA file")
		credPath  = fs.String("cred", "gateway.pem", "server credential file")
		listen    = fs.String("listen", ":8443", "TLS listen address")
		stateRoot = fs.String("state-dir", "", "journal root (overrides the spec's journalDir)")
		interval  = fs.Duration("interval", controller.DefaultInterval, "reconcile cadence")
		advertise = fs.String("advertise", "", "this gateway's URL in federation advertisements (default: the spec's own peers entry for -usite)")
		fedEvery  = fs.Duration("fed-interval", 0, "federation gossip cadence (default one minute)")
	)
	fs.Parse(args)
	if *specPath == "" || *usite == "" {
		return fmt.Errorf("apply: need -f and -usite")
	}
	spec, err := deploy.LoadTopology(*specPath)
	if err != nil {
		return err
	}
	ca, err := deploy.LoadAuthority(*caPath)
	if err != nil {
		return err
	}
	cred, err := deploy.LoadCredential(*credPath)
	if err != nil {
		return err
	}
	stack, err := controller.NewStack(controller.StackConfig{
		Spec:      spec,
		Usite:     core.Usite(*usite),
		Cred:      cred,
		CA:        ca,
		Clock:     sim.RealClock{},
		StateRoot: *stateRoot,
		Interval:  *interval,

		AdvertiseURL:   *advertise,
		GossipInterval: *fedEvery,
	})
	if err != nil {
		return err
	}
	stack.Controller.Start()
	if stack.Federation != nil {
		log.Printf("unicore-ctl: federated with peers %v", stack.Federation.Peers())
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("%w (is another server on %s?)", err, *listen)
	}
	log.Printf("unicore-ctl: applied %s — serving usite %s on %s, reconciling every %s",
		*specPath, *usite, l.Addr(), *interval)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- gateway.ServeTLS(l, stack.Gateway, cred, ca) }()
	select {
	case sig := <-sigc:
		log.Printf("unicore-ctl: %s — draining down", sig)
		l.Close()
		// Give in-flight requests a beat to finish before retiring replicas.
		select {
		case <-errc:
		case <-time.After(2 * time.Second):
		}
	case err := <-errc:
		if err != nil {
			return err
		}
	}
	return stack.Close()
}
