// Command unicore-ca manages the deployment's certificate authority — the
// stand-in for the DFN-PCA of §5.2. It initialises a CA, issues user,
// server, and software certificates, and revokes them.
//
// Usage:
//
//	unicore-ca init   -ca ca.pem -name "DFN-PCA"
//	unicore-ca user   -ca ca.pem -cn "Alice Ahlmann" -org FZJ -o alice.pem
//	unicore-ca server -ca ca.pem -cn gateway.fzj -host gw.fzj.de -o gateway.pem
//	unicore-ca software -ca ca.pem -cn "UNICORE Consortium" -o software.pem
//	unicore-ca revoke -ca ca.pem -cert alice.pem
//	unicore-ca show   -cert alice.pem
package main

import (
	"flag"
	"fmt"
	"os"

	"unicore/internal/deploy"
	"unicore/internal/pki"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "init":
		err = cmdInit(args)
	case "user", "server", "software":
		err = cmdIssue(cmd, args)
	case "revoke":
		err = cmdRevoke(args)
	case "show":
		err = cmdShow(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "unicore-ca:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: unicore-ca <init|user|server|software|revoke|show> [flags]`)
}

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	caPath := fs.String("ca", "ca.pem", "CA file to create")
	name := fs.String("name", "DFN-PCA", "CA common name")
	fs.Parse(args)
	if _, err := os.Stat(*caPath); err == nil {
		return fmt.Errorf("%s already exists", *caPath)
	}
	ca, err := pki.NewAuthority(*name)
	if err != nil {
		return err
	}
	data, err := ca.EncodePEM()
	if err != nil {
		return err
	}
	if err := deploy.WriteFile(*caPath, data); err != nil {
		return err
	}
	fmt.Printf("created CA %q in %s\n", *name, *caPath)
	return nil
}

// cmdIssue issues one certificate and re-persists the CA (serial counter).
func cmdIssue(kind string, args []string) error {
	fs := flag.NewFlagSet(kind, flag.ExitOnError)
	caPath := fs.String("ca", "ca.pem", "CA file")
	cn := fs.String("cn", "", "subject common name")
	org := fs.String("org", "UNICORE", "subject organisation (user certificates)")
	host := fs.String("host", "localhost", "DNS name (server certificates)")
	out := fs.String("o", "", "output credential file")
	fs.Parse(args)
	if *cn == "" || *out == "" {
		return fmt.Errorf("need -cn and -o")
	}
	ca, err := deploy.LoadAuthority(*caPath)
	if err != nil {
		return err
	}
	var cred *pki.Credential
	switch kind {
	case "user":
		cred, err = ca.IssueUser(*cn, *org)
	case "server":
		cred, err = ca.IssueServer(*cn, *host)
	case "software":
		cred, err = ca.IssueSoftware(*cn)
	}
	if err != nil {
		return err
	}
	data, err := cred.EncodePEM()
	if err != nil {
		return err
	}
	if err := deploy.WriteFile(*out, data); err != nil {
		return err
	}
	// Persist the advanced serial counter.
	caData, err := ca.EncodePEM()
	if err != nil {
		return err
	}
	if err := deploy.WriteFile(*caPath, caData); err != nil {
		return err
	}
	fmt.Printf("issued %s certificate %s (serial %s) -> %s\n", kind, cred.DN(), cred.Cert.SerialNumber, *out)
	return nil
}

func cmdRevoke(args []string) error {
	fs := flag.NewFlagSet("revoke", flag.ExitOnError)
	caPath := fs.String("ca", "ca.pem", "CA file")
	certPath := fs.String("cert", "", "credential file to revoke")
	fs.Parse(args)
	if *certPath == "" {
		return fmt.Errorf("need -cert")
	}
	ca, err := deploy.LoadAuthority(*caPath)
	if err != nil {
		return err
	}
	cred, err := deploy.LoadCredential(*certPath)
	if err != nil {
		return err
	}
	ca.Revoke(cred.Cert)
	data, err := ca.EncodePEM()
	if err != nil {
		return err
	}
	if err := deploy.WriteFile(*caPath, data); err != nil {
		return err
	}
	fmt.Printf("revoked %s (serial %s)\n", cred.DN(), cred.Cert.SerialNumber)
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	certPath := fs.String("cert", "", "credential file to describe")
	fs.Parse(args)
	if *certPath == "" {
		return fmt.Errorf("need -cert")
	}
	cred, err := deploy.LoadCredential(*certPath)
	if err != nil {
		return err
	}
	fmt.Printf("subject: %s\nrole:    %s\nserial:  %s\nissuer:  CN=%s\n",
		cred.DN(), cred.Role, cred.Cert.SerialNumber, cred.Cert.Issuer.CommonName)
	return nil
}
