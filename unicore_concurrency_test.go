package unicore_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unicore"
	"unicore/internal/machine"
	"unicore/internal/njs"
	"unicore/internal/testbed"
)

// TestConcurrentClientsStress drives N concurrent clients through the full
// gateway → NJS path — a consign/poll/fetch mix — while a single driver
// goroutine advances the virtual clock (the clock's contract allows only one
// driving goroutine; everything else is genuinely concurrent). It asserts
// per-job isolation (every client's List shows exactly its own jobs, all
// successful) and that the gateway's lock-free Stats() totals stay
// consistent. Run with -race: this is the regression test for the sharded
// NJS registry and the atomic gateway counters.
func TestConcurrentClientsStress(t *testing.T) {
	const (
		clients       = 8
		jobsPerClient = 4
		fileSize      = 300 << 10 // two 256 KiB fetch chunks
	)
	d, err := testbed.New(testbed.SiteSpec{
		Usite:  "FZJ",
		Vsites: []njs.VsiteConfig{{Name: "T3E", Profile: machine.CrayT3E(256)}},
	})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	defer d.Close()

	creds := make([]*unicore.Credential, clients)
	for i := range creds {
		cred, err := d.NewUser(fmt.Sprintf("Stress User %02d", i), "Stress", fmt.Sprintf("stress%02d", i))
		if err != nil {
			t.Fatalf("user %d: %v", i, err)
		}
		creds[i] = cred
	}

	jobIDs := make([][]unicore.JobID, clients)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			jpa, jmc := d.JPA(creds[c]), d.JMC(creds[c])
			for k := 0; k < jobsPerClient; k++ {
				jb := unicore.NewJob(fmt.Sprintf("stress-%02d-%02d", c, k),
					unicore.Target{Usite: "FZJ", Vsite: "T3E"})
				jb.Script("produce", fmt.Sprintf("cpu 5m\nwrite out.dat %d\n", fileSize),
					unicore.ResourceRequest{Processors: 2, RunTime: time.Hour})
				job, err := jb.Build()
				if err != nil {
					errs <- fmt.Errorf("client %d: build: %w", c, err)
					return
				}
				id, err := jpa.Submit(job)
				if err != nil {
					errs <- fmt.Errorf("client %d: submit: %w", c, err)
					return
				}
				jobIDs[c] = append(jobIDs[c], id)
				s, err := jmc.Wait("FZJ", id, 0,
					func(time.Duration) { time.Sleep(200 * time.Microsecond) }, 1<<20)
				if err != nil {
					errs <- fmt.Errorf("client %d: wait %s: %w", c, id, err)
					return
				}
				if s.Status != unicore.StatusSuccessful {
					errs <- fmt.Errorf("client %d: job %s finished %s", c, id, s.Status)
					return
				}
				data, err := jmc.FetchFile("FZJ", id, "out.dat")
				if err != nil {
					errs <- fmt.Errorf("client %d: fetch %s: %w", c, id, err)
					return
				}
				if len(data) != fileSize {
					errs <- fmt.Errorf("client %d: fetched %d bytes, want %d", c, len(data), fileSize)
					return
				}
			}
		}(c)
	}

	// Single clock driver: keep firing due events until every client is done.
	var clientsDone atomic.Bool
	go func() {
		wg.Wait()
		clientsDone.Store(true)
	}()
	for !clientsDone.Load() {
		d.Clock.RunUntilIdle(100000)
		time.Sleep(100 * time.Microsecond)
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Per-job isolation: each client's List sees exactly its own jobs.
	for c := 0; c < clients; c++ {
		list, err := d.JMC(creds[c]).List("FZJ")
		if err != nil {
			t.Fatalf("client %d: list: %v", c, err)
		}
		if len(list) != jobsPerClient {
			t.Fatalf("client %d sees %d jobs, want %d", c, len(list), jobsPerClient)
		}
		mine := make(map[unicore.JobID]bool, len(jobIDs[c]))
		for _, id := range jobIDs[c] {
			mine[id] = true
		}
		for _, info := range list {
			if !mine[info.Job] {
				t.Fatalf("client %d sees foreign job %s", c, info.Job)
			}
			if info.Status != unicore.StatusSuccessful {
				t.Fatalf("client %d: job %s listed as %s", c, info.Job, info.Status)
			}
		}
	}

	// Stats consistency: every request is counted exactly once, by type.
	st := d.Sites["FZJ"].Gateway.Stats()
	var byType int64
	for _, v := range st.ByType {
		byType += v
	}
	if st.Requests != byType {
		t.Fatalf("stats inconsistent: %d requests, %d by type", st.Requests, byType)
	}
	if st.Rejected != 0 {
		t.Fatalf("stats: %d rejected requests: %v", st.Rejected, st.ByFailure)
	}
	// consigns + at least one poll and one two-chunk fetch per job. Under
	// protocol v3 the hot kinds ride the persistent stream (counted by the
	// gateway_stream_frames_total telemetry counter) instead of arriving as
	// envelopes; the two censuses together must still cover the workload.
	frames := int64(d.Sites["FZJ"].Gateway.Telemetry().Snapshot().Total("gateway_stream_frames_total"))
	if min := int64(clients * jobsPerClient * 4); st.Requests+frames < min {
		t.Fatalf("stats: %d envelopes + %d stream frames, expected at least %d", st.Requests, frames, min)
	}
}
