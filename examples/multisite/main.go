// Multisite: the distributed-application shape of the paper's §3 — one
// UNICORE job whose job groups run at three different German centres, with
// sequential dependencies and Uspace-to-Uspace file transfers between them
// (§5.6). The FZJ NJS splits the job, consigns the sub-groups to the peer
// sites through their gateways, polls them, and pulls the produced files
// across site boundaries over the https protocol.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"unicore"
)

func main() {
	// The full §5.7 German testbed: FZJ, RUS, RUKA, LRZ, ZIB, DWD.
	d, err := unicore.German()
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	user, err := d.NewUser("Gerd Grid", "GCS", "ggrid")
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1 (ZIB Cray T3E): generate the computational grid.
	mesh := unicore.NewJob("mesh generation", unicore.Target{Usite: "ZIB", Vsite: "T3E"})
	mesh.Script("generate mesh", "cpu 15m\nwrite mesh.dat 262144\necho mesh ready\n",
		unicore.ResourceRequest{Processors: 16, RunTime: 2 * time.Hour})

	// Stage 2 (RUKA IBM SP-2): compute boundary conditions in parallel.
	bounds := unicore.NewJob("boundary conditions", unicore.Target{Usite: "RUKA", Vsite: "SP2"})
	bounds.Script("compute boundaries", "cpu 10m\nwrite bounds.dat 65536\necho boundaries ready\n",
		unicore.ResourceRequest{Processors: 8, RunTime: 2 * time.Hour})

	// Main job (FZJ Cray T3E): consume both data sets.
	b := unicore.NewJob("coupled simulation", unicore.Target{Usite: "FZJ", Vsite: "T3E"})
	meshGroup := b.SubJob(mesh)
	boundsGroup := b.SubJob(bounds)
	fetchMesh := b.Transfer("fetch mesh", meshGroup, "mesh.dat")
	fetchBounds := b.Transfer("fetch boundaries", boundsGroup, "bounds.dat")
	solve := b.Script("solve",
		"cat mesh.dat > m.tmp\ncat bounds.dat > b.tmp\ncpu 90m\nwrite solution.dat 524288\necho solved\n",
		unicore.ResourceRequest{Processors: 64, RunTime: 6 * time.Hour})
	archive := b.Export("archive solution", "solution.dat", "/results/solution.dat")
	// The two sub-jobs run concurrently at their sites; the transfers wait
	// for them; the solver waits for both transfers.
	b.After(meshGroup, fetchMesh)
	b.After(boundsGroup, fetchBounds)
	b.After(fetchMesh, solve).After(fetchBounds, solve)
	b.After(solve, archive)

	job, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job tree: %d actions across 3 sites\n", job.CountActions())

	ctx := context.Background()
	sess := d.Session(user, "FZJ")
	id, err := sess.Submit(ctx, job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("consigned to FZJ as", id)

	d.Run(10_000_000)

	outcome, err := sess.Outcome(ctx, id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(unicore.Display(outcome))

	sum, _ := sess.Status(ctx, id)
	if sum.Status != unicore.StatusSuccessful {
		log.Fatalf("multisite job finished %s", sum.Status)
	}
	fmt.Println("\nall three sites cooperated: mesh (ZIB) + boundaries (RUKA) -> solve (FZJ)")
}
