// Failover: the scaled-out server tier surviving a replica crash. One Usite
// runs a Vsite behind three journaled NJS replicas (docs/ARCHITECTURE.md);
// the demo consigns a workload, kills one replica mid-run, proves the pool
// stops routing to it while it is down, recovers it from its journal, and
// prints that every job reached the same outcome as an uninterrupted run of
// the identical workload — zero lost and zero duplicated jobs.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"unicore"
)

const (
	usite    = "POOL"
	vsite    = "CLUSTER"
	replicas = 3
	victim   = 1 // replica killed mid-workload
)

// run executes the workload once and returns every job's terminal status,
// keyed by job name. With kill set, replica 1 is crashed mid-workload and
// later recovered from its journal.
func run(kill bool) (map[string]string, error) {
	d, err := unicore.ReplicatedSite(usite, vsite, 16, replicas, unicore.PoolRoundRobin)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	user, err := d.NewUser("Failover Demo", "Example Org", "fdemo")
	if err != nil {
		return nil, err
	}

	// Every replica journals independently, exactly as separate processes
	// would.
	type handle struct {
		dir   string
		store *unicore.JournalStore
	}
	stores := make([]handle, replicas)
	for i := range stores {
		dir, err := os.MkdirTemp("", "unicore-failover-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		store, err := d.EnableReplicaDurability(usite, vsite, i, dir, 256)
		if err != nil {
			return nil, err
		}
		stores[i] = handle{dir: dir, store: store}
	}
	defer func() {
		for _, h := range stores {
			if err := h.store.Close(); err != nil {
				log.Printf("closing journal store: %v", err)
			}
		}
	}()

	cfg := unicore.DefaultWorkload(42, 12, d.Targets())
	cfg.MultiSiteFraction = 0
	cfg.MeanCPU = 15 * time.Minute
	cfg.MaxProcs = 8
	jobs, err := unicore.GenerateWorkload(cfg)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	sess := d.Session(user, usite)
	ids := make(map[string]unicore.JobID, len(jobs))
	for _, j := range jobs {
		id, err := sess.Submit(ctx, j)
		if err != nil {
			return nil, err
		}
		ids[j.Name()] = id
	}

	// Mid-workload: staging done, batch jobs spread over the three replicas.
	d.Clock.Advance(10 * time.Minute)

	if kill {
		h := stores[victim]
		if err := h.store.Sync(); err != nil {
			return nil, err
		}
		if err := d.KillReplica(usite, vsite, victim); err != nil {
			return nil, err
		}
		fmt.Printf("killed replica %d mid-workload; pool routes around it:\n", victim)
		// New work keeps flowing while the replica is down — the health
		// check tripped its breaker, so admissions land on the survivors.
		b := unicore.NewJob("during-outage", unicore.Target{Usite: usite, Vsite: vsite})
		b.Script("noop", "cpu 1m\necho still serving\n",
			unicore.ResourceRequest{Processors: 1, RunTime: time.Hour})
		probe, err := b.Build()
		if err != nil {
			return nil, err
		}
		if _, err := sess.Submit(ctx, probe); err != nil {
			return nil, err
		}
		fmt.Printf("  consign during outage: accepted by a surviving replica\n")

		// Recover the victim from its journal and swap it back into the
		// pool under its stable replica name.
		if err := h.store.Close(); err != nil {
			return nil, err
		}
		store, err := unicore.OpenJournal(h.dir)
		if err != nil {
			return nil, err
		}
		stores[victim] = handle{dir: h.dir, store: store}
		if err := d.RestartReplica(usite, vsite, victim, store, 256); err != nil {
			return nil, err
		}
		fmt.Printf("  replica %d recovered from its journal and rejoined the pool\n\n", victim)
	}

	if fired := d.Run(10_000_000); fired >= 10_000_000 {
		return nil, fmt.Errorf("clock never went idle")
	}

	out := make(map[string]string, len(ids))
	for name, id := range ids {
		o, err := sess.Outcome(ctx, id)
		if err != nil {
			return nil, err
		}
		out[name] = o.Status.String()
	}
	return out, nil
}

func main() {
	base, err := run(false)
	if err != nil {
		log.Fatal(err)
	}
	failed, err := run(true)
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-10s  %-12s  %-12s\n", "job", "baseline", "failover")
	identical := true
	for _, name := range names {
		fmt.Printf("%-10s  %-12s  %-12s\n", name, base[name], failed[name])
		if base[name] != failed[name] {
			identical = false
		}
	}
	fmt.Printf("\noutcomes identical across replica failover: %v\n", identical)
	if !identical {
		os.Exit(1)
	}
}
