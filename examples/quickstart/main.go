// Quickstart: deploy a one-site UNICORE installation in-process, submit a
// script job through the full stack — session → gateway (X.509
// authentication, DN→login mapping) → NJS (incarnation) → batch subsystem —
// and await the result over the protocol-v2 server-push event stream
// instead of polling.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"unicore"
)

func main() {
	// One Usite ("DEMO") with an 8-node cluster Vsite ("CLUSTER").
	d, err := unicore.SingleSite("DEMO", "CLUSTER", 8)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// Issue an X.509 user certificate — the DN is the unique UNICORE
	// user-id — and map it to the local login "jdoe" at every Vsite.
	user, err := d.NewUser("Jane Doe", "Demo Organisation", "jdoe")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("user identity:", user.DN())

	// Build an abstract job with the JPA: import workstation data, run a
	// script, export the result to the site's file space.
	target := unicore.Target{Usite: "DEMO", Vsite: "CLUSTER"}
	b := unicore.NewJob("quickstart", target)
	imp := b.ImportBytes("stage input", []byte("21"), "input.txt")
	run := b.Script("double it", "cat input.txt > seen.txt\necho 42 > answer.txt\ncat answer.txt\n",
		unicore.ResourceRequest{Processors: 1, RunTime: 5 * time.Minute})
	exp := b.Export("archive answer", "answer.txt", "/results/answer.txt")
	b.After(imp, run).After(run, exp)
	job, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Open a context-aware session and submit (the JPA validates against
	// the Vsite's resource page first).
	ctx := context.Background()
	sess := d.Session(user, "DEMO")
	if _, err := sess.JPA().FetchResources("DEMO"); err != nil {
		log.Fatal(err)
	}
	if err := sess.JPA().Validate(job); err != nil {
		log.Fatal(err)
	}
	id, err := sess.Submit(ctx, job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("consigned job:", id)

	// Follow the server-push event stream while the virtual clock drives
	// the deployment: no polling — the gateway holds the subscription and
	// replies as the NJS appends lifecycle events.
	watch, err := sess.Watch(ctx, id)
	if err != nil {
		log.Fatal(err)
	}
	go d.Run(100000)
	for ev := range watch {
		fmt.Printf("event #%d %-12s %-14s → %s\n", ev.Seq, ev.Type, ev.Action, ev.Status)
	}

	// Await is the one-call form: it returns the terminal summary after
	// O(1) round trips (here the stream is already complete).
	sum, err := sess.Await(ctx, id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final status: %s (%d/%d actions done)\n\n", sum.Status, sum.Done, sum.Total)

	outcome, err := sess.Outcome(ctx, id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(unicore.Display(outcome))
	if task, ok := outcome.Find(run); ok {
		fmt.Printf("\nscript stdout: %s", task.Stdout)
	}
}
