// Quickstart: deploy a one-site UNICORE installation in-process, submit a
// script job through the full stack — JPA → gateway (X.509 authentication,
// DN→login mapping) → NJS (incarnation) → batch subsystem — and read the
// outcome back, exactly as a 1999 user would through the applet GUI.
package main

import (
	"fmt"
	"log"
	"time"

	"unicore"
)

func main() {
	// One Usite ("DEMO") with an 8-node cluster Vsite ("CLUSTER").
	d, err := unicore.SingleSite("DEMO", "CLUSTER", 8)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// Issue an X.509 user certificate — the DN is the unique UNICORE
	// user-id — and map it to the local login "jdoe" at every Vsite.
	user, err := d.NewUser("Jane Doe", "Demo Organisation", "jdoe")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("user identity:", user.DN())

	// Build an abstract job with the JPA: import workstation data, run a
	// script, export the result to the site's file space.
	target := unicore.Target{Usite: "DEMO", Vsite: "CLUSTER"}
	b := unicore.NewJob("quickstart", target)
	imp := b.ImportBytes("stage input", []byte("21"), "input.txt")
	run := b.Script("double it", "cat input.txt > seen.txt\necho 42 > answer.txt\ncat answer.txt\n",
		unicore.ResourceRequest{Processors: 1, RunTime: 5 * time.Minute})
	exp := b.Export("archive answer", "answer.txt", "/results/answer.txt")
	b.After(imp, run).After(run, exp)
	job, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Submit (the JPA validates against the Vsite's resource page first).
	jpa := d.JPA(user)
	if _, err := jpa.FetchResources("DEMO"); err != nil {
		log.Fatal(err)
	}
	if err := jpa.Validate(job); err != nil {
		log.Fatal(err)
	}
	id, err := jpa.Submit(job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("consigned job:", id)

	// Drive the virtual clock until the deployment is idle.
	d.Run(100000)

	// Monitor with the JMC: coloured status display and task output.
	jmc := d.JMC(user)
	sum, err := jmc.Status("DEMO", id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final status: %s (%d/%d actions done)\n\n", sum.Status, sum.Done, sum.Total)

	outcome, err := jmc.Outcome("DEMO", id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(unicore.Display(outcome))
	if task, ok := outcome.Find(run); ok {
		fmt.Printf("\nscript stdout: %s", task.Stdout)
	}
}
