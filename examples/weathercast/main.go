// Weathercast: the Deutscher Wetterdienst scenario the §5.7 deployment
// served. A daily forecast pipeline as one UNICORE job: observation data is
// prepared on DWD's NEC SX-4, the forecast model is compiled (F90) and run
// on FZJ's Cray T3E — the compile-link-execute chain of §5.7 — and the
// product is post-processed on LRZ's Fujitsu VPP700. Dependency files are
// handed from step to step with UNICORE's §5.7 guarantee.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"unicore"
)

// forecastModel is the synthetic F90 source for the simulated toolchain:
// !SIM: directives become the runtime behaviour of the linked binary.
const forecastModel = `! lm.f90 — Lokal-Modell, synthetic kernel
!SIM: cpu 2h
!SIM: write forecast.grib 1048576
!SIM: echo integration finished after 78 steps
program lm
  call integrate()
end program lm
`

func main() {
	d, err := unicore.German()
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	user, err := d.NewUser("Doris Wetter", "DWD", "dwetter")
	if err != nil {
		log.Fatal(err)
	}

	// Job group 1 — DWD SX-4: assimilate observations.
	assim := unicore.NewJob("assimilation", unicore.Target{Usite: "DWD", Vsite: "SX4"})
	obs := assim.ImportBytes("stage observations", observations(), "obs.raw")
	prep := assim.Script("assimilate",
		"cat obs.raw > checked.tmp\ncpu 30m\nwrite analysis.dat 524288\necho analysis ready\n",
		unicore.ResourceRequest{Processors: 4, RunTime: 3 * time.Hour})
	assim.After(obs, prep)

	// Job group 2 — FZJ T3E: compile-link-execute the forecast model.
	model := unicore.NewJob("forecast", unicore.Target{Usite: "FZJ", Vsite: "T3E"})
	src := model.ImportBytes("stage model source", []byte(forecastModel), "lm.f90")
	cc := model.Compile("compile lm", "f90", []string{"lm.f90"}, "lm.o",
		unicore.ResourceRequest{Processors: 1, RunTime: time.Hour})
	ld := model.Link("link lm", []string{"lm.o"}, []string{"MPI"}, "lm.exe",
		unicore.ResourceRequest{Processors: 1, RunTime: time.Hour})
	run := model.Execute("run forecast", "lm.exe", nil,
		unicore.ResourceRequest{Processors: 128, RunTime: 8 * time.Hour})
	model.Chain(src, cc, ld, run)

	// Job group 3 — LRZ VPP700: derive products.
	post := unicore.NewJob("products", unicore.Target{Usite: "LRZ", Vsite: "VPP"})
	charts := post.Script("derive charts",
		"cat forecast.grib > decoded.tmp\ncpu 20m\nwrite charts.ps 131072\necho charts done\n",
		unicore.ResourceRequest{Processors: 2, RunTime: 2 * time.Hour})
	exp := post.Export("publish charts", "charts.ps", "/products/today/charts.ps")
	post.After(charts, exp)

	// The enclosing UNICORE job, consigned at DWD. Analysis data flows
	// DWD→FZJ; the forecast flows FZJ→LRZ. UNICORE guarantees the named
	// files are available to the successor (§5.7).
	b := unicore.NewJob("daily forecast", unicore.Target{Usite: "DWD", Vsite: "SX4"})
	gAssim := b.SubJob(assim)
	gModel := b.SubJob(model)
	gPost := b.SubJob(post)
	b.After(gAssim, gModel, "analysis.dat")
	b.After(gModel, gPost, "forecast.grib")

	job, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	sess := d.Session(user, "DWD")
	id, err := sess.Submit(ctx, job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("forecast pipeline consigned as", id)

	d.Run(10_000_000)

	outcome, err := sess.Outcome(ctx, id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(unicore.Display(outcome))

	sum, _ := sess.Status(ctx, id)
	if sum.Status != unicore.StatusSuccessful {
		log.Fatalf("pipeline finished %s", sum.Status)
	}
	fmt.Println("\nforecast produced: DWD assimilation -> FZJ model run -> LRZ products")
}

// observations synthesises a deterministic observation batch.
func observations() []byte {
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte('0' + i%10)
	}
	return data
}
