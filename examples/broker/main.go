// Broker: the §6 outlook made concrete. The user states an abstract
// resource demand ("64 processors for two hours, f90 available") instead of
// naming a destination system; the resource broker combines the sites'
// resource pages (§5.4) with live load information from every gateway and
// places the job on the best Vsite. The example saturates the Jülich T3E
// first, then shows the broker steering new work away from it.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"unicore"
)

func main() {
	d, err := unicore.German()
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	user, err := d.NewUser("Berta Broker", "GCS", "bbroker")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	c := d.UserClient(user)

	demand := unicore.ResourceRequest{Processors: 16, RunTime: 2 * time.Hour}

	// Round 1: everything idle — ask the broker where to go.
	b := unicore.NewBroker(unicore.BestTurnaround)
	if err := b.Refresh(c, d.Usites()...); err != nil {
		log.Fatal(err)
	}
	first, err := b.Choose(demand)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("idle deployment: broker places the job on", first)

	// Saturate the chosen machine with background load. Sessions are bound
	// to one Usite, so each broker-chosen destination gets its own — all
	// sharing the one protocol client (and its persistent v3 streams).
	fmt.Printf("saturating %s with background jobs...\n", first)
	bgSess, err := unicore.Dial("", unicore.WithClient(c), unicore.WithSite(first.Usite))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		bg := unicore.NewJob(fmt.Sprintf("background-%02d", i), first)
		bg.Script("burn", "cpu 4h\necho burned\n",
			unicore.ResourceRequest{Processors: 16, RunTime: 12 * time.Hour})
		bgJob, err := bg.Build()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := bgSess.Submit(ctx, bgJob); err != nil {
			log.Fatal(err)
		}
	}
	// Let the batch scheduler place the background load.
	d.Clock.Advance(time.Second)

	// Round 2: refresh load info — the broker now steers elsewhere.
	if err := b.Refresh(c, d.Usites()...); err != nil {
		log.Fatal(err)
	}
	second, err := b.Choose(demand)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("under load: broker places the job on", second)
	if second == first {
		log.Fatalf("broker did not react to load (still %s)", second)
	}

	// Submit the real job to the broker's choice and see it through.
	job := unicore.NewJob("brokered simulation", second)
	job.Script("simulate", "cpu 1h\nwrite result.dat 65536\necho simulated\n", demand)
	built, err := job.Build()
	if err != nil {
		log.Fatal(err)
	}
	sess, err := unicore.Dial("", unicore.WithClient(c), unicore.WithSite(second.Usite))
	if err != nil {
		log.Fatal(err)
	}
	id, err := sess.Submit(ctx, built)
	if err != nil {
		log.Fatal(err)
	}
	d.Run(10_000_000)
	sum, err := sess.Status(ctx, id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("brokered job %s at %s finished %s\n", id, second, sum.Status)

	// Show the ranking the broker saw.
	cands, err := b.Candidates(demand)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal ranking (lower score is better):")
	for _, cand := range cands {
		fmt.Printf("  %-10s score %8.0f  load %4.0f%%  pending %d\n",
			cand.Target, cand.Score, cand.Load.Load*100, cand.Load.Pending)
	}
}
