// The benchmark harness regenerates every figure and evaluated claim of the
// paper (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// recorded results):
//
//	E1 BenchmarkFig1_SingleSiteJobFlow       — Figure 1, one Usite end to end
//	E2 BenchmarkFig2_MultiSiteDistribution   — Figure 2, N-site job groups
//	E3 BenchmarkFig3_AJORoundTrip            — Figure 3, AJO codec round trips
//	E4 BenchmarkSec57_GermanTestbed          — §5.7 six-site mixed workload
//	E5 BenchmarkSec56_TransferHTTPSvsLocal   — §5.6 transfer-rate disadvantage
//	E6 BenchmarkSec53_AsyncVsSyncRobustness  — §5.3 protocol robustness claim
//	E7 BenchmarkSec55_UnicoreOverhead        — §5.5 minimal-interference claim
//	E8 BenchmarkSec6_BrokerExtension         — §6 resource-broker outlook
//	   BenchmarkAblation_Backfill            — batch-scheduler design choice
//	   BenchmarkAblation_FirewallSplit       — §5.2 deployment choice
//
// Batch execution is simulated on a virtual clock, so the *virtual* metrics
// (vms/op, vmin/run, ...) carry the paper-facing shapes while ns/op measures
// the middleware's real processing cost.
package unicore_test

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"unicore"
	"unicore/internal/accounting"
	"unicore/internal/ajo"
	"unicore/internal/codine"
	"unicore/internal/machine"
	"unicore/internal/njs"
	"unicore/internal/protocol"
	"unicore/internal/resources"
	"unicore/internal/sim"
	"unicore/internal/telemetry"
	"unicore/internal/testbed"
	"unicore/internal/vfs"
)

// siteTelemetry scrapes and merges one Usite's live telemetry snapshots —
// the same testbed hook the metrics-smoke CI step uses. The figures derived
// from it (envelopes-verified/sec, consign-ack p99) land in BENCH_PR.json as
// advisory trend metrics; benchgate does not gate on them.
func siteTelemetry(b *testing.B, d *testbed.Deployment, usite unicore.Usite) telemetry.Snapshot {
	b.Helper()
	snaps, err := d.Metrics(usite)
	if err != nil {
		b.Fatalf("telemetry scrape: %v", err)
	}
	return telemetry.Merge("bench", snaps...)
}

// mustDeploy builds a deployment or aborts the benchmark.
func mustDeploy(b *testing.B, specs ...testbed.SiteSpec) *testbed.Deployment {
	b.Helper()
	d, err := testbed.New(specs...)
	if err != nil {
		b.Fatalf("deploy: %v", err)
	}
	b.Cleanup(d.Close)
	return d
}

func mustUser(b *testing.B, d *testbed.Deployment, uid string) *unicore.Credential {
	b.Helper()
	cred, err := d.NewUser("Bench User "+uid, "Bench", uid)
	if err != nil {
		b.Fatalf("user: %v", err)
	}
	return cred
}

// runJob submits a built job, drives the clock to idle, and returns the
// root outcome (failing the benchmark on any non-success).
func runJob(b *testing.B, d *testbed.Deployment, user *unicore.Credential, job *unicore.AbstractJob) *unicore.Outcome {
	b.Helper()
	id, err := d.JPA(user).Submit(job)
	if err != nil {
		b.Fatalf("submit: %v", err)
	}
	d.Run(50_000_000)
	o, err := d.JMC(user).Outcome(job.Target.Usite, id)
	if err != nil {
		b.Fatalf("outcome: %v", err)
	}
	if o.Status != unicore.StatusSuccessful {
		b.Fatalf("job finished %s:\n%s", o.Status, unicore.Display(o))
	}
	return o
}

// singleSiteSpec is the Figure 1 topology: one Usite, one T3E Vsite.
func singleSiteSpec(usite unicore.Usite) testbed.SiteSpec {
	return testbed.SiteSpec{
		Usite:  usite,
		Vsites: []njs.VsiteConfig{{Name: "T3E", Profile: machine.CrayT3E(128)}},
	}
}

// --- E1: Figure 1 — the detailed single-site architecture ----------------

// BenchmarkFig1_SingleSiteJobFlow pushes one script job through every box of
// Figure 1: the user signs the AJO, the gateway authenticates and maps the
// DN, the NJS incarnates and submits, the batch subsystem runs the script,
// and the outcome flows back. ns/op is the real middleware cost per job;
// vms/op is the virtual end-to-end latency (dominated by the batch tier).
func BenchmarkFig1_SingleSiteJobFlow(b *testing.B) {
	d := mustDeploy(b, singleSiteSpec("FZJ"))
	user := mustUser(b, d, "fig1")
	var virtual time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jb := unicore.NewJob(fmt.Sprintf("fig1-%06d", i), unicore.Target{Usite: "FZJ", Vsite: "T3E"})
		imp := jb.ImportBytes("stage", []byte("data"), "in.dat")
		run := jb.Script("app", "cat in.dat > seen.tmp\ncpu 10m\necho done\n",
			unicore.ResourceRequest{Processors: 4, RunTime: time.Hour})
		exp := jb.Export("archive", "seen.tmp", fmt.Sprintf("/res/fig1-%06d.out", i))
		jb.After(imp, run).After(run, exp)
		job, err := jb.Build()
		if err != nil {
			b.Fatalf("build: %v", err)
		}
		o := runJob(b, d, user, job)
		virtual += o.Finished.Sub(o.Started)
	}
	b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "vms/op")
}

// --- E2: Figure 2 — multiple connected Usites -----------------------------

// BenchmarkFig2_MultiSiteDistribution consigns one UNICORE job whose N-1
// sub-job-groups run at peer Usites, with a Uspace-to-Uspace transfer from
// each — the "different servers are connected" overview of Figure 2. The
// virtual latency grows with N (more transfers and remote polling); the real
// per-job middleware cost measures the distribution machinery.
func BenchmarkFig2_MultiSiteDistribution(b *testing.B) {
	for _, sites := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("usites=%d", sites), func(b *testing.B) {
			specs := make([]testbed.SiteSpec, sites)
			for i := range specs {
				specs[i] = singleSiteSpec(unicore.Usite(fmt.Sprintf("SITE%02d", i)))
			}
			d := mustDeploy(b, specs...)
			user := mustUser(b, d, "fig2")
			var virtual time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jb := unicore.NewJob(fmt.Sprintf("fig2-%06d", i), unicore.Target{Usite: "SITE00", Vsite: "T3E"})
				var gather []unicore.ActionID
				for s := 1; s < sites; s++ {
					sub := unicore.NewJob(fmt.Sprintf("part-%d", s),
						unicore.Target{Usite: unicore.Usite(fmt.Sprintf("SITE%02d", s)), Vsite: "T3E"})
					sub.Script("produce", fmt.Sprintf("cpu 5m\nwrite part%d.dat 8192\n", s),
						unicore.ResourceRequest{Processors: 2, RunTime: time.Hour})
					g := jb.SubJob(sub)
					tr := jb.Transfer(fmt.Sprintf("fetch-%d", s), g, fmt.Sprintf("part%d.dat", s))
					jb.After(g, tr)
					gather = append(gather, tr)
				}
				merge := jb.Script("merge", "cpu 2m\necho merged\n",
					unicore.ResourceRequest{Processors: 1, RunTime: time.Hour})
				for _, tr := range gather {
					jb.After(tr, merge)
				}
				job, err := jb.Build()
				if err != nil {
					b.Fatalf("build: %v", err)
				}
				o := runJob(b, d, user, job)
				virtual += o.Finished.Sub(o.Started)
			}
			b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "vms/op")
		})
	}
}

// --- E3: Figure 3 — the AJO class hierarchy as the wire protocol ----------

// fullAJO builds a job exercising all 14 concrete AbstractAction classes of
// Figure 3, nested to the given job-group depth.
func fullAJO(depth int) *ajo.AbstractJob {
	req := resources.Request{Processors: 4, RunTime: time.Hour, MemoryMB: 128}
	leaf := func(level int) *ajo.AbstractJob {
		id := func(s string) ajo.Header {
			return ajo.Header{ActionID: ajo.ActionID(fmt.Sprintf("%s-%d", s, level)), ActionName: s}
		}
		j := &ajo.AbstractJob{
			Header: ajo.Header{ActionID: ajo.ActionID(fmt.Sprintf("job-%d", level)), ActionName: "level"},
			Target: unicore.Target{Usite: "FZJ", Vsite: "T3E"},
			Actions: ajo.ActionList{
				&ajo.ImportTask{Header: id("import"), Source: ajo.ImportSource{Inline: []byte("x")}, To: "in"},
				&ajo.ExportTask{Header: id("export"), From: "out", ToXspace: "/x/out"},
				&ajo.ExecuteTask{TaskBase: ajo.TaskBase{Header: id("exec"), Resources: req}, Executable: "a.out"},
				&ajo.CompileTask{TaskBase: ajo.TaskBase{Header: id("compile"), Resources: req},
					Language: "f90", Sources: []string{"m.f90"}, Output: "m.o"},
				&ajo.LinkTask{TaskBase: ajo.TaskBase{Header: id("link"), Resources: req},
					Objects: []string{"m.o"}, Output: "a.out"},
				&ajo.UserTask{TaskBase: ajo.TaskBase{Header: id("user"), Resources: req}, Command: "hostname"},
				&ajo.ScriptTask{TaskBase: ajo.TaskBase{Header: id("script"), Resources: req}, Script: "echo hi\n"},
			},
		}
		j.Actions = append(j.Actions, &ajo.TransferTask{
			Header: id("transfer"), FromAction: ajo.ActionID(fmt.Sprintf("exec-%d", level)), Files: []string{"f"},
		})
		return j
	}
	root := leaf(0)
	cur := root
	for lvl := 1; lvl < depth; lvl++ {
		next := leaf(lvl)
		cur.Actions = append(cur.Actions, next)
		cur = next
	}
	return root
}

// BenchmarkFig3_AJORoundTrip measures encode+decode of the full Figure 3
// hierarchy at increasing recursion depth, for both codecs (JSON envelope
// with type registry, and gob). B/op tracks the wire size pressure.
func BenchmarkFig3_AJORoundTrip(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 6} {
		job := fullAJO(depth)
		b.Run(fmt.Sprintf("codec=json/depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				raw, err := ajo.Marshal(job)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ajo.Unmarshal(raw); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("codec=gob/depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				raw, err := ajo.MarshalGob(job)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ajo.UnmarshalGob(raw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E4: §5.7 — the German production testbed -----------------------------

// BenchmarkSec57_GermanTestbed deploys the six 1999 sites and drives the
// mixed workload (scripts, F90 compile-link-execute, multi-site job groups)
// through them. Reported: virtual makespan, jobs per virtual hour, and mean
// batch utilisation.
func BenchmarkSec57_GermanTestbed(b *testing.B) {
	const jobs = 40
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := mustDeploy(b, testbed.GermanSpecs()...)
		user := mustUser(b, d, fmt.Sprintf("s57-%d", i))
		workload, err := testbed.GenerateWorkload(testbed.DefaultWorkload(int64(i)+1999, jobs, d.Targets()))
		if err != nil {
			b.Fatalf("workload: %v", err)
		}
		jpa := d.JPA(user)
		b.StartTimer()

		for _, j := range workload {
			if _, err := jpa.Submit(j); err != nil {
				b.Fatalf("submit %s: %v", j.Name(), err)
			}
		}
		d.Run(50_000_000)

		b.StopTimer()
		recs := d.Accounting()
		sum := accounting.Summarise(recs)
		if sum.Failed != 0 {
			b.Fatalf("%d batch jobs failed", sum.Failed)
		}
		makespan := accounting.Makespan(recs)
		b.ReportMetric(makespan.Minutes(), "vmin/run")
		b.ReportMetric(float64(jobs)/makespan.Hours(), "jobs/vhour")
		d.Close()
		b.StartTimer()
	}
}

// --- E5: §5.6 — transfer rates, https vs local copy -----------------------

// BenchmarkSec56_TransferHTTPSvsLocal reproduces the §5.6 admission: Uspace
// to Uspace transfers over the https NJS–NJS path "[have] disadvantages with
// respect to transfer rates especially for huge data sets", versus the local
// Xspace-to-Uspace copy at a Vsite. vms/op is the virtual duration of the
// staging action; the https path is slower and the gap widens with size.
func BenchmarkSec56_TransferHTTPSvsLocal(b *testing.B) {
	sizes := []int{4 << 10, 256 << 10, 1 << 20, 16 << 20}
	d := mustDeploy(b, singleSiteSpec("FZJ"), singleSiteSpec("ZIB"))
	user := mustUser(b, d, "s56")
	fzj, _ := d.Sites["FZJ"].NJS.Vsite("T3E")

	for _, size := range sizes {
		b.Run(fmt.Sprintf("path=local/size=%d", size), func(b *testing.B) {
			var virtual time.Duration
			for i := 0; i < b.N; i++ {
				src := fmt.Sprintf("/stage/local-%d-%06d.dat", size, i)
				if err := fzj.Space.WriteXspace(src, make([]byte, size)); err != nil {
					b.Fatalf("xspace: %v", err)
				}
				jb := unicore.NewJob("local-import", unicore.Target{Usite: "FZJ", Vsite: "T3E"})
				imp := jb.ImportXspace("import", src, "in.dat")
				job, err := jb.Build()
				if err != nil {
					b.Fatalf("build: %v", err)
				}
				o := runJob(b, d, user, job)
				act, _ := o.Find(imp)
				virtual += act.Finished.Sub(act.Started)
			}
			b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "vms/op")
		})
		b.Run(fmt.Sprintf("path=https/size=%d", size), func(b *testing.B) {
			var virtual time.Duration
			for i := 0; i < b.N; i++ {
				sub := unicore.NewJob("producer", unicore.Target{Usite: "ZIB", Vsite: "T3E"})
				sub.Script("produce", fmt.Sprintf("write big.dat %d\n", size),
					unicore.ResourceRequest{Processors: 1, RunTime: time.Hour})
				jb := unicore.NewJob("remote-transfer", unicore.Target{Usite: "FZJ", Vsite: "T3E"})
				g := jb.SubJob(sub)
				tr := jb.Transfer("pull", g, "big.dat")
				jb.After(g, tr)
				job, err := jb.Build()
				if err != nil {
					b.Fatalf("build: %v", err)
				}
				o := runJob(b, d, user, job)
				act, _ := o.Find(tr)
				virtual += act.Finished.Sub(act.Started)
			}
			b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "vms/op")
		})
	}
}

// --- E6: §5.3 — asynchronous vs synchronous protocol robustness -----------

// BenchmarkSec53_AsyncVsSyncRobustness quantifies "the asynchronous protocol
// protects against any unreliability of the underlying communication
// mechanism": completion rates of both protocol variants over a lossy link,
// swept across failure rates. The async rate stays ≈100%; the sync baseline
// collapses as job duration × failure rate grows.
func BenchmarkSec53_AsyncVsSyncRobustness(b *testing.B) {
	for _, perHour := range []float64{1, 6, 30} {
		b.Run(fmt.Sprintf("failures-per-hour=%g", perHour), func(b *testing.B) {
			var async, sync float64
			for i := 0; i < b.N; i++ {
				res := protocol.SimulateRobustness(protocol.RobustnessConfig{
					Seed:        int64(i) + 1,
					Trials:      200,
					JobDuration: 20 * time.Minute,
					Link: protocol.LinkModel{
						FailureRate: perHour / 3600,
						MsgTime:     200 * time.Millisecond,
					},
				})
				async += res.Async.CompletionRate()
				sync += res.Sync.CompletionRate()
			}
			b.ReportMetric(async/float64(b.N)*100, "async-done-%")
			b.ReportMetric(sync/float64(b.N)*100, "sync-done-%")
		})
	}
}

// --- E7: §5.5 — minimal interference with the local batch system ----------

// BenchmarkSec55_UnicoreOverhead compares the same batch script submitted
// directly to the Codine RMS against the full UNICORE path (gateway
// authentication, DN mapping, incarnation, Uspace management). The virtual
// latency difference is the UNICORE layer's overhead — small against queue
// and run times, which is the §5.5 design claim.
func BenchmarkSec55_UnicoreOverhead(b *testing.B) {
	const script = "cpu 10m\necho done\n"

	b.Run("path=direct-codine", func(b *testing.B) {
		clock := sim.NewVirtualClock()
		fs := vfs.New(clock)
		rms, err := codine.New(clock, codine.Config{
			Machine: machine.CrayT3E(128),
			Queues:  []codine.Queue{{Name: "batch", Slots: 128, MaxTime: 24 * time.Hour}},
		})
		if err != nil {
			b.Fatalf("codine: %v", err)
		}
		if err := fs.MkdirAll("/work"); err != nil {
			b.Fatalf("fs: %v", err)
		}
		var virtual time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			done := make(chan codine.Result, 1)
			_, err := rms.Submit(codine.JobSpec{
				Name: fmt.Sprintf("direct-%06d", i), Owner: "bench", Queue: "batch",
				Slots: 4, TimeLimit: time.Hour, Script: script, FS: fs, WorkDir: "/work",
				Done: func(_ codine.JobID, r codine.Result) { done <- r },
			})
			if err != nil {
				b.Fatalf("submit: %v", err)
			}
			start := clock.Now()
			clock.RunUntilIdle(100000)
			res := <-done
			if res.State != codine.StateDone {
				b.Fatalf("job finished %s", res.State)
			}
			virtual += clock.Now().Sub(start)
		}
		b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "vms/op")
	})

	b.Run("path=unicore", func(b *testing.B) {
		d := mustDeploy(b, singleSiteSpec("FZJ"))
		user := mustUser(b, d, "s55")
		var virtual time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			jb := unicore.NewJob(fmt.Sprintf("via-unicore-%06d", i), unicore.Target{Usite: "FZJ", Vsite: "T3E"})
			jb.Script("app", script, unicore.ResourceRequest{Processors: 4, RunTime: time.Hour})
			job, err := jb.Build()
			if err != nil {
				b.Fatalf("build: %v", err)
			}
			start := d.Clock.Now()
			o := runJob(b, d, user, job)
			virtual += o.Finished.Sub(start)
		}
		b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "vms/op")
	})
}

// --- E8: §6 — the resource-broker extension -------------------------------

// BenchmarkSec6_BrokerExtension measures the outlook scenario: under skewed
// load (the user's habitual machine is saturated), broker-placed jobs finish
// far sooner than user-fixed placement. vmin/run is the virtual makespan of
// the demand jobs.
func BenchmarkSec6_BrokerExtension(b *testing.B) {
	const demandJobs = 8
	run := func(b *testing.B, useBroker bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			d := mustDeploy(b, testbed.GermanSpecs()...)
			user := mustUser(b, d, fmt.Sprintf("s6-%d", i))
			jpa, jmc := d.JPA(user), d.JMC(user)
			c := d.UserClient(user)
			habitual := unicore.Target{Usite: "FZJ", Vsite: "T3E"}
			// Saturate the habitual machine: 6 × 256 PEs on a 512-PE T3E.
			for k := 0; k < 6; k++ {
				bg := unicore.NewJob(fmt.Sprintf("bg-%02d", k), habitual)
				bg.Script("burn", "cpu 8h\n", unicore.ResourceRequest{Processors: 256, RunTime: 20 * time.Hour})
				bgJob, err := bg.Build()
				if err != nil {
					b.Fatalf("build: %v", err)
				}
				if _, err := jpa.Submit(bgJob); err != nil {
					b.Fatalf("submit bg: %v", err)
				}
			}
			d.Clock.Advance(time.Second)
			b.StartTimer()

			br := unicore.NewBroker(unicore.BestTurnaround)
			demand := unicore.ResourceRequest{Processors: 16, RunTime: 4 * time.Hour}
			start := d.Clock.Now()
			type placed struct {
				id unicore.JobID
				us unicore.Usite
			}
			var ids []placed
			for k := 0; k < demandJobs; k++ {
				target := habitual
				if useBroker {
					if err := br.Refresh(c, d.Usites()...); err != nil {
						b.Fatalf("refresh: %v", err)
					}
					t, err := br.Choose(demand)
					if err != nil {
						b.Fatalf("choose: %v", err)
					}
					target = t
				}
				jb := unicore.NewJob(fmt.Sprintf("demand-%02d", k), target)
				jb.Script("work", "cpu 1h\n", demand)
				job, err := jb.Build()
				if err != nil {
					b.Fatalf("build: %v", err)
				}
				id, err := jpa.Submit(job)
				if err != nil {
					b.Fatalf("submit: %v", err)
				}
				ids = append(ids, placed{id, target.Usite})
			}
			d.Run(50_000_000)

			b.StopTimer()
			var last time.Time
			for _, p := range ids {
				o, err := jmc.Outcome(p.us, p.id)
				if err != nil {
					b.Fatalf("outcome: %v", err)
				}
				if o.Status != unicore.StatusSuccessful {
					b.Fatalf("demand job finished %s", o.Status)
				}
				if o.Finished.After(last) {
					last = o.Finished
				}
			}
			b.ReportMetric(last.Sub(start).Minutes(), "vmin/run")
			d.Close()
			b.StartTimer()
		}
	}
	b.Run("placement=user-fixed", func(b *testing.B) { run(b, false) })
	b.Run("placement=broker", func(b *testing.B) { run(b, true) })
}

// --- Ablation: EASY backfill in the batch subsystem ------------------------

// BenchmarkAblation_Backfill replays the same job stream — alternating wide
// long jobs and narrow short ones — with and without EASY backfill. The
// makespan is pinned by the serialized wide jobs either way; backfill's win
// is that narrow jobs slide into the schedule holes instead of queueing
// behind the next wide job, collapsing their queue wait.
func BenchmarkAblation_Backfill(b *testing.B) {
	stream := func(rms *codine.RMS, fs *vfs.FS, clock *sim.VirtualClock) (makespan, narrowWait time.Duration) {
		done := 0
		collect := func(_ codine.JobID, r codine.Result) { done++ }
		for i := 0; i < 24; i++ {
			spec := codine.JobSpec{
				Owner: "bench", Queue: "batch", FS: fs, WorkDir: "/work", Done: collect,
			}
			if i%2 == 0 {
				spec.Name = fmt.Sprintf("wide-%02d", i)
				spec.Slots = 96
				spec.TimeLimit = 5 * time.Hour
				spec.Script = "cpu 2h\n"
			} else {
				spec.Name = fmt.Sprintf("narrow-%02d", i)
				spec.Slots = 8
				spec.TimeLimit = time.Hour
				spec.Script = "cpu 20m\n"
			}
			if _, err := rms.Submit(spec); err != nil {
				panic(err)
			}
		}
		start := clock.Now()
		clock.RunUntilIdle(1000000)
		var last time.Time
		narrow := 0
		for _, rec := range rms.Accounting() {
			if rec.End.After(last) {
				last = rec.End
			}
			if rec.Slots == 8 {
				narrowWait += rec.Start.Sub(rec.Submit)
				narrow++
			}
		}
		if done != 24 {
			panic(fmt.Sprintf("only %d/24 jobs completed", done))
		}
		return last.Sub(start), narrowWait / time.Duration(narrow)
	}
	for _, backfill := range []bool{false, true} {
		b.Run(fmt.Sprintf("backfill=%v", backfill), func(b *testing.B) {
			var mkspan, wait time.Duration
			for i := 0; i < b.N; i++ {
				clock := sim.NewVirtualClock()
				fs := vfs.New(clock)
				if err := fs.MkdirAll("/work"); err != nil {
					b.Fatal(err)
				}
				rms, err := codine.New(clock, codine.Config{
					Machine:  machine.CrayT3E(128),
					Queues:   []codine.Queue{{Name: "batch", Slots: 128, MaxTime: 24 * time.Hour}},
					Backfill: backfill,
				})
				if err != nil {
					b.Fatal(err)
				}
				m, w := stream(rms, fs, clock)
				mkspan += m
				wait += w
			}
			b.ReportMetric(mkspan.Minutes()/float64(b.N), "vmin/run")
			b.ReportMetric(wait.Minutes()/float64(b.N), "narrow-wait-vmin")
		})
	}
}

// --- Concurrency: multi-client throughput through gateway → NJS ------------

// BenchmarkConcurrentClients measures the NJS/gateway service hot path under
// concurrent load: parallel clients issue a poll/list/fetch mix against a
// pool of completed jobs through the full authenticated gateway → NJS path.
// With the sharded job registry (per-job locks, atomic gateway counters,
// ranged Uspace reads), requests for different jobs share no lock, so
// throughput scales with GOMAXPROCS instead of flatlining on a global mutex:
//
//	go test -bench ConcurrentClients -cpu 1,2,4,8
func BenchmarkConcurrentClients(b *testing.B) {
	const (
		jobPool  = 16
		fileSize = 300 << 10 // two fetch chunks
	)
	d := mustDeploy(b, singleSiteSpec("FZJ"))
	user := mustUser(b, d, "conc")
	jpa := d.JPA(user)
	ids := make([]unicore.JobID, jobPool)
	for i := range ids {
		jb := unicore.NewJob(fmt.Sprintf("conc-%03d", i), unicore.Target{Usite: "FZJ", Vsite: "T3E"})
		jb.Script("produce", fmt.Sprintf("cpu 1m\nwrite out.dat %d\n", fileSize),
			unicore.ResourceRequest{Processors: 2, RunTime: time.Hour})
		job, err := jb.Build()
		if err != nil {
			b.Fatalf("build: %v", err)
		}
		id, err := jpa.Submit(job)
		if err != nil {
			b.Fatalf("submit: %v", err)
		}
		ids[i] = id
	}
	d.Run(50_000_000)
	jmc := d.JMC(user)
	for _, id := range ids {
		s, err := jmc.Status("FZJ", id)
		if err != nil || s.Status != unicore.StatusSuccessful {
			b.Fatalf("job %s not ready: %v %s", id, err, s.Status)
		}
	}

	verifiedBefore := siteTelemetry(b, d, "FZJ").Total("pki_verify_total")
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// One JMC (and protocol client) per worker, as real clients would.
		jmc := d.JMC(user)
		for pb.Next() {
			i := next.Add(1)
			id := ids[int(i)%jobPool]
			switch i % 8 {
			case 0:
				if _, err := jmc.List("FZJ"); err != nil {
					b.Errorf("list: %v", err)
					return
				}
			case 1:
				data, err := jmc.FetchFile("FZJ", id, "out.dat")
				if err != nil || len(data) != fileSize {
					b.Errorf("fetch: %d bytes, err %v", len(data), err)
					return
				}
			default:
				if _, err := jmc.Status("FZJ", id); err != nil {
					b.Errorf("status: %v", err)
					return
				}
			}
		}
	})
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		verified := siteTelemetry(b, d, "FZJ").Total("pki_verify_total") - verifiedBefore
		b.ReportMetric(verified/secs, "envelopes-verified/sec")
	}
}

// --- Session API v2: server-push events vs interval polling ----------------

// monitorEnvelopes counts the signed monitoring envelopes (status polls plus
// event subscribes) a gateway has verified.
func monitorEnvelopes(d *testbed.Deployment, usite unicore.Usite) int64 {
	stats := d.Sites[usite].Gateway.Stats()
	return stats.ByType[protocol.MsgPoll] + stats.ByType[protocol.MsgSubscribe]
}

// notifyBenchJob is the monitored workload of the Wait/Await pair: ~20
// virtual minutes of batch work.
func notifyBenchJob(b *testing.B, i int) *unicore.AbstractJob {
	jb := unicore.NewJob(fmt.Sprintf("notify-%06d", i), unicore.Target{Usite: "FZJ", Vsite: "T3E"})
	jb.Script("work", "cpu 20m\necho done\n", unicore.ResourceRequest{Processors: 4, RunTime: time.Hour})
	job, err := jb.Build()
	if err != nil {
		b.Fatalf("build: %v", err)
	}
	return job
}

// BenchmarkWaitPoll measures the deprecated poll-paced monitor: JMC.Wait
// issues one signed monitoring envelope per 2-second interval until the job
// is terminal, so envelopes/job grows with the job's duration —
// O(duration/interval), the §5.3 scaling wall the session API removes.
func BenchmarkWaitPoll(b *testing.B) {
	d := mustDeploy(b, singleSiteSpec("FZJ"))
	user := mustUser(b, d, "waitpoll")
	jpa, jmc := d.JPA(user), d.JMC(user)
	before := monitorEnvelopes(d, "FZJ")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := jpa.Submit(notifyBenchJob(b, i))
		if err != nil {
			b.Fatalf("submit: %v", err)
		}
		sum, err := jmc.Wait("FZJ", id, 2*time.Second, func(dur time.Duration) { d.Clock.Advance(dur) }, 100000)
		if err != nil {
			b.Fatalf("wait: %v", err)
		}
		if sum.Status != unicore.StatusSuccessful {
			b.Fatalf("job finished %s", sum.Status)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(monitorEnvelopes(d, "FZJ")-before)/float64(b.N), "envelopes/job")
}

// BenchmarkAwaitEvent measures the protocol-v2 session monitor: one
// long-polled subscribe that the server holds until the terminal event, plus
// the final summary fetch — O(1) envelopes per completed job regardless of
// duration. Compare the envelopes/job metric against BenchmarkWaitPoll.
func BenchmarkAwaitEvent(b *testing.B) {
	d := mustDeploy(b, singleSiteSpec("FZJ"))
	user := mustUser(b, d, "await")
	sess := d.Session(user, "FZJ")
	before := monitorEnvelopes(d, "FZJ")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := sess.Submit(context.Background(), notifyBenchJob(b, i))
		if err != nil {
			b.Fatalf("submit: %v", err)
		}
		type result struct {
			sum unicore.Summary
			err error
		}
		done := make(chan result, 1)
		go func() {
			sum, err := sess.Await(context.Background(), id)
			done <- result{sum, err}
		}()
		// Drive the virtual clock while Await blocks on the long-poll; keep
		// driving until the awaiting goroutine reports back.
		var res result
	drive:
		for {
			d.Run(50_000_000)
			select {
			case res = <-done:
				break drive
			case <-time.After(100 * time.Microsecond):
			}
		}
		if res.err != nil {
			b.Fatalf("await: %v", res.err)
		}
		if res.sum.Status != unicore.StatusSuccessful {
			b.Fatalf("job finished %s", res.sum.Status)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(monitorEnvelopes(d, "FZJ")-before)/float64(b.N), "envelopes/job")
	if p99 := siteTelemetry(b, d, "FZJ").Quantile("consign_ack_seconds", 0.99); p99 > 0 {
		b.ReportMetric(p99*1000, "consign-ack-p99-ms")
	}
}

// --- Wire-protocol v3 hot path: sustained request rates --------------------

// BenchmarkConsignRate measures the sustained consign admission rate through
// one session: build, seal, and durably journal one small AJO per iteration
// over the persistent v3 stream. consigns/sec is the gated control-plane
// throughput figure; it covers the whole client-side cost (AJO encode,
// commit-digest signing, framed round trip) plus gateway verify + journal.
func BenchmarkConsignRate(b *testing.B) {
	d := mustDeploy(b, singleSiteSpec("FZJ"))
	user := mustUser(b, d, "crate")
	sess := d.Session(user, "FZJ")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jb := unicore.NewJob(fmt.Sprintf("rate-%06d", i), unicore.Target{Usite: "FZJ", Vsite: "T3E"})
		jb.Script("app", "echo ok\n", unicore.ResourceRequest{Processors: 1, RunTime: time.Minute})
		job, err := jb.Build()
		if err != nil {
			b.Fatalf("build: %v", err)
		}
		if _, err := sess.Submit(context.Background(), job); err != nil {
			b.Fatalf("submit: %v", err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "consigns/sec")
	}
}

// BenchmarkEventRate measures event-backlog delivery through the session
// subscribe path: a finished multi-step job leaves a backlog of lifecycle
// events, and each iteration re-reads it from cursor zero. At v3 the batch
// rides one framed call; events/sec is the gated monitoring-plane
// throughput figure.
func BenchmarkEventRate(b *testing.B) {
	d := mustDeploy(b, singleSiteSpec("FZJ"))
	user := mustUser(b, d, "evrate")
	sess := d.Session(user, "FZJ")
	jb := unicore.NewJob("events", unicore.Target{Usite: "FZJ", Vsite: "T3E"})
	for i := 0; i < 8; i++ {
		jb.Script(fmt.Sprintf("step-%d", i), "cpu 1m\necho step\n",
			unicore.ResourceRequest{Processors: 1, RunTime: time.Hour})
	}
	job, err := jb.Build()
	if err != nil {
		b.Fatalf("build: %v", err)
	}
	id, err := sess.Submit(context.Background(), job)
	if err != nil {
		b.Fatalf("submit: %v", err)
	}
	d.Run(50_000_000)
	backlog, err := sess.Events(context.Background(), protocol.SubscribeRequest{Job: id, Max: 1024})
	if err != nil || len(backlog.Events) == 0 {
		b.Fatalf("event backlog: %d events, err %v", len(backlog.Events), err)
	}
	perFetch := len(backlog.Events)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reply, err := sess.Events(context.Background(), protocol.SubscribeRequest{Job: id, Max: 1024})
		if err != nil {
			b.Fatalf("events: %v", err)
		}
		if len(reply.Events) != perFetch {
			b.Fatalf("backlog drifted: %d events, want %d", len(reply.Events), perFetch)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(perFetch)*float64(b.N)/secs, "events/sec")
	}
}

// --- Bulk staging: windowed parallel transfers vs the sequential baseline ---

// fetchEnvelopes counts the signed ranged-read envelopes (MsgFetch) a
// gateway has verified.
func fetchEnvelopes(d *testbed.Deployment, usite unicore.Usite) int64 {
	return d.Sites[usite].Gateway.Stats().ByType[protocol.MsgFetch]
}

// BenchmarkTransferThroughput measures the §5.6 bulk download path for a
// 16 MiB Uspace result through the full authenticated gateway → NJS stack.
// path=sequential reproduces the pre-v3 implementation — a v2-pinned client
// issuing one signed envelope per sequential 256 KiB chunk, exactly one in
// flight. path=parallel is the redesigned hot path: the staging engine's
// default 1 MiB × 8 readahead window riding the persistent v3 stream, where
// chunk data travels as length-prefixed binary frames instead of signed
// envelopes. The parallel path must win on both MB/s (no per-chunk
// base64+sign/verify round trip) and envelopes/MB (streamed fetches verify
// one session hello, not one envelope per chunk) — the benchgate CI step
// enforces exactly that invariant.
func BenchmarkTransferThroughput(b *testing.B) {
	const fileSize = 16 << 20
	d := mustDeploy(b, singleSiteSpec("FZJ"))
	user := mustUser(b, d, "xfer")
	jb := unicore.NewJob("produce", unicore.Target{Usite: "FZJ", Vsite: "T3E"})
	jb.Script("produce", fmt.Sprintf("cpu 1m\nwrite out.dat %d\n", fileSize),
		unicore.ResourceRequest{Processors: 2, RunTime: time.Hour})
	job, err := jb.Build()
	if err != nil {
		b.Fatalf("build: %v", err)
	}
	id, err := d.JPA(user).Submit(job)
	if err != nil {
		b.Fatalf("submit: %v", err)
	}
	d.Run(10_000_000)

	modes := []struct {
		name       string
		opt        unicore.TransferOptions
		maxVersion int // 0 = newest; 2 pins the pre-v3 envelope path
	}{
		{"path=sequential", unicore.TransferOptions{ChunkSize: 256 << 10, Window: 1}, 2},
		{"path=parallel", unicore.TransferOptions{}, 0}, // engine defaults: 1 MiB × 8, v3 stream
	}
	for _, m := range modes {
		b.Run(fmt.Sprintf("%s/size=%d", m.name, fileSize), func(b *testing.B) {
			opts := []unicore.DialOption{unicore.WithClient(d.UserClient(user)), unicore.WithSite("FZJ")}
			if m.maxVersion != 0 {
				opts = append(opts, unicore.WithVersion(m.maxVersion))
			}
			sess, err := unicore.Dial("", opts...)
			if err != nil {
				b.Fatalf("dial: %v", err)
			}
			sess.Transfer = m.opt
			before := fetchEnvelopes(d, "FZJ")
			b.SetBytes(fileSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Download(context.Background(), id, "out.dat", io.Discard); err != nil {
					b.Fatalf("download: %v", err)
				}
			}
			b.StopTimer()
			envelopes := float64(fetchEnvelopes(d, "FZJ")-before) / float64(b.N)
			b.ReportMetric(envelopes/(float64(fileSize)/(1<<20)), "envelopes/MB")
		})
	}
}

// --- Ablation: §5.2 firewall split vs combined gateway ---------------------

// BenchmarkAblation_FirewallSplit measures the real per-request cost of the
// split deployment (envelope verified at the front, relayed over the IP
// socket, verified again inside) against the combined server.
func BenchmarkAblation_FirewallSplit(b *testing.B) {
	for _, split := range []bool{false, true} {
		b.Run(fmt.Sprintf("split=%v", split), func(b *testing.B) {
			spec := singleSiteSpec("FZJ")
			spec.Split = split
			d := mustDeploy(b, spec)
			user := mustUser(b, d, "fw")
			jmc := d.JMC(user)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := jmc.List("FZJ"); err != nil {
					b.Fatalf("list: %v", err)
				}
			}
		})
	}
}

// --- Federation: cross-gateway forwarding ---------------------------------

// BenchmarkFederatedConsign measures the §6 multi-gateway outlook: every job
// targets FZJ with `-site auto` semantics but needs more processors than FZJ
// has, so the federated broker places it behind the DWD peer gateway and the
// consign is re-sealed and forwarded there. ns/op is the full forwarded
// consign cost (two signed envelopes plus remote journaling);
// fed-forward-ack-p99-ms is the advisory forward-ack tail benchgate records
// for trend inspection.
func BenchmarkFederatedConsign(b *testing.B) {
	d := mustDeploy(b,
		testbed.SiteSpec{Usite: "FZJ", Vsites: []njs.VsiteConfig{{Name: "SMALL", Profile: machine.GenericCluster(2)}}},
		testbed.SiteSpec{Usite: "DWD", Vsites: []njs.VsiteConfig{{Name: "BIG", Profile: machine.GenericCluster(32)}}},
	)
	if err := d.EnableFederation(); err != nil {
		b.Fatalf("federation: %v", err)
	}
	// Two rounds settle transitively-learned advertisements.
	d.GossipAll()
	d.GossipAll()
	user := mustUser(b, d, "fed")
	jpa := d.JPA(user)
	var last unicore.JobID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jb := unicore.NewJob(fmt.Sprintf("fed-%06d", i), unicore.Target{Usite: "FZJ"})
		jb.Script("app", "echo forwarded\n",
			unicore.ResourceRequest{Processors: 8, RunTime: 30 * time.Minute})
		job, err := jb.Build()
		if err != nil {
			b.Fatalf("build: %v", err)
		}
		id, err := jpa.Submit(job)
		if err != nil {
			b.Fatalf("submit: %v", err)
		}
		if !strings.HasPrefix(string(id), "DWD-") {
			b.Fatalf("job %s was not forwarded to the DWD peer", id)
		}
		last = id
	}
	b.StopTimer()
	d.Run(50_000_000)
	if o, err := d.JMC(user).Outcome("FZJ", last); err != nil || o.Status != unicore.StatusSuccessful {
		b.Fatalf("forwarded job did not complete via the origin gateway: %v", err)
	}
	snap := d.Federation("FZJ").Registry().Snapshot()
	b.ReportMetric(snap.Quantile("fed_forward_ack_seconds", 0.99)*1000, "fed-forward-ack-p99-ms")
}
